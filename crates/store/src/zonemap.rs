//! Per-segment zone maps and the scan filter they prune against.
//!
//! A zone map is a tiny summary of one sealed segment — time min/max,
//! category bitset, sorted host-id set, severity and class bitsets,
//! record/survivor counts — small enough to keep resident for every
//! segment. A range or filter query consults the zone map first and
//! skips the whole segment when no record can possibly match, which
//! is the store's core performance idea: *don't read* most of the
//! data.
//!
//! Pruning is conservative by construction: `may_match` returns
//! `false` only when the summarized dimensions prove emptiness, so a
//! pruned scan is always result-identical to a full scan (the
//! equivalence property test drives this on random filters).

use std::io;

use sclog_types::segment::{class_code, severity_code, SEVERITY_CODES};
use sclog_types::{CategoryRegistry, SystemId, Timestamp};

use crate::record::StoredAlert;
use crate::varint::{corrupt, get_i64, get_u64, put_i64, put_u64};

/// Summary of one sealed segment, consulted before its payload.
#[derive(Debug, Clone, PartialEq)]
pub struct ZoneMap {
    /// Records in the segment.
    pub count: u64,
    /// Records with the survivor bit set.
    pub survivors: u64,
    /// Earliest record time.
    pub min_time: Timestamp,
    /// Latest record time.
    pub max_time: Timestamp,
    /// Smallest admission sequence.
    pub min_seq: u64,
    /// Largest admission sequence.
    pub max_seq: u64,
    /// Bitset over category indexes present.
    pub categories: Vec<u64>,
    /// Sorted, deduplicated host ids present.
    pub hosts: Vec<u32>,
    /// Bitset over severity codes present (`SEVERITY_CODES` wide).
    pub severities: u16,
    /// Bitset over class codes present.
    pub classes: u8,
    /// Byte length of the segment's record payload (excluding its
    /// CRC), so a reader can validate file size without a scan.
    pub payload_len: u64,
}

impl ZoneMap {
    /// Summarizes `records`; `categories` resolves each record's
    /// class. `payload_len` is filled in by the segment writer.
    ///
    /// # Panics
    ///
    /// Panics on an empty batch — empty segments are never sealed.
    pub fn build(records: &[StoredAlert], categories: &CategoryRegistry) -> ZoneMap {
        assert!(!records.is_empty(), "zone map of an empty segment");
        let mut zone = ZoneMap {
            count: records.len() as u64,
            survivors: 0,
            min_time: records[0].time,
            max_time: records[0].time,
            min_seq: records[0].seq,
            max_seq: records[0].seq,
            categories: Vec::new(),
            hosts: Vec::new(),
            severities: 0,
            classes: 0,
            payload_len: 0,
        };
        for r in records {
            zone.survivors += u64::from(r.filtered);
            zone.min_time = zone.min_time.min(r.time);
            zone.max_time = zone.max_time.max(r.time);
            zone.min_seq = zone.min_seq.min(r.seq);
            zone.max_seq = zone.max_seq.max(r.seq);
            let cat = r.category.index();
            if zone.categories.len() <= cat / 64 {
                zone.categories.resize(cat / 64 + 1, 0);
            }
            zone.categories[cat / 64] |= 1 << (cat % 64);
            zone.hosts.push(r.host.index() as u32);
            zone.severities |= 1 << severity_code(r.severity);
            zone.classes |= 1 << class_code(categories.def(r.category).alert_type);
        }
        zone.hosts.sort_unstable();
        zone.hosts.dedup();
        zone
    }

    /// Whether any record in the segment *could* satisfy `filter`.
    /// `false` is a proof of emptiness; `true` is only a maybe.
    pub fn may_match(&self, filter: &ScanFilter) -> bool {
        if let Some(from) = filter.from {
            if self.max_time < from {
                return false;
            }
        }
        if let Some(to) = filter.to {
            if self.min_time > to {
                return false;
            }
        }
        match filter.filtered {
            Some(true) if self.survivors == 0 => return false,
            Some(false) if self.survivors == self.count => return false,
            _ => {}
        }
        if let Some(mask) = filter.severities {
            if self.severities & mask == 0 {
                return false;
            }
        }
        if let Some(mask) = filter.classes {
            if self.classes & mask == 0 {
                return false;
            }
        }
        if let Some(want) = &filter.categories {
            let overlap = self.categories.iter().zip(want).any(|(&a, &b)| a & b != 0);
            if !overlap {
                return false;
            }
        }
        if let Some(want) = &filter.hosts {
            if !sorted_intersect(&self.hosts, want) {
                return false;
            }
        }
        true
    }

    /// Serializes the zone map (appending to `out`).
    pub fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, self.count);
        put_u64(out, self.survivors);
        put_i64(out, self.min_time.as_micros());
        put_i64(out, self.max_time.as_micros());
        put_u64(out, self.min_seq);
        put_u64(out, self.max_seq);
        put_u64(out, self.categories.len() as u64);
        for &word in &self.categories {
            put_u64(out, word);
        }
        put_u64(out, self.hosts.len() as u64);
        let mut prev = 0u32;
        for &host in &self.hosts {
            put_u64(out, u64::from(host - prev)); // sorted: deltas ≥ 0
            prev = host;
        }
        put_u64(out, u64::from(self.severities));
        put_u64(out, u64::from(self.classes));
        put_u64(out, self.payload_len);
    }

    /// Deserializes a zone map written by [`ZoneMap::encode`].
    ///
    /// # Errors
    ///
    /// `InvalidData` on truncation, trailing bytes, or out-of-range
    /// sets.
    pub fn decode(buf: &[u8]) -> io::Result<ZoneMap> {
        let mut pos = 0usize;
        let count = get_u64(buf, &mut pos)?;
        let survivors = get_u64(buf, &mut pos)?;
        let min_time = Timestamp::from_micros(get_i64(buf, &mut pos)?);
        let max_time = Timestamp::from_micros(get_i64(buf, &mut pos)?);
        let min_seq = get_u64(buf, &mut pos)?;
        let max_seq = get_u64(buf, &mut pos)?;
        let words = get_u64(buf, &mut pos)?;
        if words > (u16::MAX as u64 / 64) + 1 {
            return Err(corrupt("zone category bitset"));
        }
        let mut categories = Vec::with_capacity(words as usize);
        for _ in 0..words {
            categories.push(get_u64(buf, &mut pos)?);
        }
        let host_count = get_u64(buf, &mut pos)?;
        if host_count > count {
            return Err(corrupt("zone host set"));
        }
        let mut hosts = Vec::with_capacity(host_count as usize);
        let mut prev = 0u64;
        for _ in 0..host_count {
            prev += get_u64(buf, &mut pos)?;
            if prev > u64::from(u32::MAX) {
                return Err(corrupt("zone host id"));
            }
            hosts.push(prev as u32);
        }
        let severities = get_u64(buf, &mut pos)?;
        if severities >> SEVERITY_CODES != 0 {
            return Err(corrupt("zone severity bitset"));
        }
        let classes = get_u64(buf, &mut pos)?;
        if classes > 0x7 {
            return Err(corrupt("zone class bitset"));
        }
        let payload_len = get_u64(buf, &mut pos)?;
        if pos != buf.len() {
            return Err(corrupt("zone map (trailing bytes)"));
        }
        Ok(ZoneMap {
            count,
            survivors,
            min_time,
            max_time,
            min_seq,
            max_seq,
            categories,
            hosts,
            severities: severities as u16,
            classes: classes as u8,
            payload_len,
        })
    }
}

/// The store-level query predicate; `None` in any dimension means
/// "unconstrained". Built by `sclogd` from a parsed URL query, or
/// directly by tests and benches.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ScanFilter {
    /// Inclusive lower time bound.
    pub from: Option<Timestamp>,
    /// Inclusive upper time bound.
    pub to: Option<Timestamp>,
    /// Restrict to one system (prunes whole partitions).
    pub system: Option<SystemId>,
    /// Allowed category indexes as a bitset; `Some(all-zero)` matches
    /// nothing (e.g. an unknown category name).
    pub categories: Option<Vec<u64>>,
    /// Allowed host ids, sorted; `Some(empty)` matches nothing.
    pub hosts: Option<Vec<u32>>,
    /// Allowed severity codes as a bitset.
    pub severities: Option<u16>,
    /// Allowed class codes as a bitset.
    pub classes: Option<u8>,
    /// Survivor-bit requirement.
    pub filtered: Option<bool>,
}

impl ScanFilter {
    /// A filter matching every record.
    pub fn all() -> ScanFilter {
        ScanFilter::default()
    }

    /// Whether one record satisfies every dimension. `categories`
    /// resolves the record's system and class.
    pub fn matches(&self, r: &StoredAlert, categories: &CategoryRegistry) -> bool {
        if let Some(from) = self.from {
            if r.time < from {
                return false;
            }
        }
        if let Some(to) = self.to {
            if r.time > to {
                return false;
            }
        }
        if let Some(want) = self.filtered {
            if r.filtered != want {
                return false;
            }
        }
        if let Some(mask) = self.severities {
            if mask & (1 << severity_code(r.severity)) == 0 {
                return false;
            }
        }
        if let Some(want) = &self.categories {
            let cat = r.category.index();
            if want
                .get(cat / 64)
                .map_or(true, |w| w & (1 << (cat % 64)) == 0)
            {
                return false;
            }
        }
        if let Some(want) = &self.hosts {
            if want.binary_search(&(r.host.index() as u32)).is_err() {
                return false;
            }
        }
        let def = categories.def(r.category);
        if let Some(system) = self.system {
            if def.system != system {
                return false;
            }
        }
        if let Some(mask) = self.classes {
            if mask & (1 << class_code(def.alert_type)) == 0 {
                return false;
            }
        }
        true
    }
}

/// Whether two sorted slices share an element (merge walk).
fn sorted_intersect(a: &[u32], b: &[u32]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use sclog_types::{CategoryId, NodeId, Severity};

    fn registry() -> CategoryRegistry {
        let mut reg = CategoryRegistry::new();
        reg.register(
            "HW CAT",
            SystemId::Liberty,
            sclog_types::AlertType::Hardware,
        );
        reg.register("SW CAT", SystemId::Spirit, sclog_types::AlertType::Software);
        reg
    }

    fn records() -> Vec<StoredAlert> {
        (0..4)
            .map(|i| StoredAlert {
                time: Timestamp::from_micros(1_000_000 * i),
                host: NodeId::from_index((i % 2) as u32 * 5),
                category: CategoryId::from_index((i % 2) as u16),
                severity: Severity::None,
                message_index: i as usize,
                filtered: i % 2 == 0,
                seq: 10 + i as u64,
            })
            .collect()
    }

    #[test]
    fn zone_round_trips_and_summarizes() {
        let reg = registry();
        let mut zone = ZoneMap::build(&records(), &reg);
        zone.payload_len = 99;
        assert_eq!(zone.count, 4);
        assert_eq!(zone.survivors, 2);
        assert_eq!(zone.hosts, vec![0, 5]);
        assert_eq!(zone.min_seq, 10);
        assert_eq!(zone.max_seq, 13);
        assert_eq!(zone.classes, 0b11);
        let mut buf = Vec::new();
        zone.encode(&mut buf);
        assert_eq!(ZoneMap::decode(&buf).unwrap(), zone);
        for cut in 0..buf.len() {
            assert!(ZoneMap::decode(&buf[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn pruning_is_conservative() {
        let reg = registry();
        let zone = ZoneMap::build(&records(), &reg);
        let recs = records();
        // A filter the zone prunes must match no record; a filter any
        // record matches must pass the zone.
        let disjoint_time = ScanFilter {
            from: Some(Timestamp::from_micros(10_000_000)),
            ..ScanFilter::all()
        };
        assert!(!zone.may_match(&disjoint_time));
        assert!(recs.iter().all(|r| !disjoint_time.matches(r, &reg)));

        let wrong_host = ScanFilter {
            hosts: Some(vec![1, 2, 3]),
            ..ScanFilter::all()
        };
        assert!(!zone.may_match(&wrong_host));

        let matching = ScanFilter {
            hosts: Some(vec![5]),
            filtered: Some(false),
            ..ScanFilter::all()
        };
        assert!(zone.may_match(&matching));
        assert!(recs.iter().any(|r| matching.matches(r, &reg)));
    }
}
