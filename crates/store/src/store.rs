//! The store facade: a catalog plus `(system, day)` partitions.
//!
//! Layout on disk, under one root directory:
//!
//! ```text
//! root/catalog.bin                  host + category tables
//! root/<system-slug>/<YYYY-MM-DD>/  one partition per (system, day)
//!     MANIFEST.bin  wal.bin  seg-XXXXXXXX.seg …
//! ```
//!
//! Appends assign a store-global admission sequence, route each
//! record to its partition, and land in that partition's WAL;
//! partitions whose tail reaches the configured threshold are sealed
//! into zone-mapped segments. Scans prune at two levels — whole
//! partitions by system and day, then sealed segments by zone map —
//! before any payload is read.

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

use sclog_obs::{Counter, Recorder, Stage, ThreadRecorder};
use sclog_types::segment::{system_code, system_from_code, system_slug};
use sclog_types::{AlertType, CategoryId, NodeId, ScanStats, SystemId, Timestamp};

use crate::catalog::Catalog;
use crate::partition::Partition;
use crate::record::StoredAlert;
use crate::varint::corrupt;
use crate::zonemap::ScanFilter;

/// Microseconds in one day; the partitioning grain.
const DAY_MICROS: i64 = 86_400_000_000;

/// Catalog file name under the store root.
const CATALOG_FILE: &str = "catalog.bin";

/// Tuning knobs for a store.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Tail size at which a partition is auto-sealed on append.
    pub seal_records: usize,
    /// Memoize decoded segment payloads for the store's lifetime.
    /// Serving daemons want this; benches measuring real reads do not.
    pub cache_payloads: bool,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            seal_records: 4096,
            cache_payloads: true,
        }
    }
}

/// Obs handles for the store's hot paths. Register once (before any
/// worker thread is spawned — the obs registry seals at first
/// `thread()`), or use [`StoreMetrics::disabled`] for no-op handles.
#[derive(Debug, Clone, Copy)]
pub struct StoreMetrics {
    /// Sealed segments skipped by partition or zone-map pruning.
    pub segments_pruned: Counter,
    /// Sealed segments whose payload a scan actually visited.
    pub segments_scanned: Counter,
    /// Segment-file bytes read by scans (cache hits read zero).
    pub bytes_read: Counter,
    /// WAL append work.
    pub wal: Stage,
    /// Segment seal work.
    pub seal: Stage,
    /// Compaction work.
    pub compact: Stage,
}

impl StoreMetrics {
    /// Registers the store's metrics on `recorder`.
    pub fn register(recorder: &Recorder) -> StoreMetrics {
        StoreMetrics {
            segments_pruned: recorder.counter("store.segments_pruned"),
            segments_scanned: recorder.counter("store.segments_scanned"),
            bytes_read: recorder.counter("store.bytes_read"),
            wal: recorder.stage("store.wal"),
            seal: recorder.stage("store.seal"),
            compact: recorder.stage("store.compact"),
        }
    }

    /// No-op handles, safe to use through any thread recorder.
    pub fn disabled() -> StoreMetrics {
        StoreMetrics::register(&Recorder::disabled())
    }
}

/// An open segment store.
#[derive(Debug)]
pub struct SegmentStore {
    root: PathBuf,
    config: StoreConfig,
    catalog: Catalog,
    catalog_dirty: bool,
    /// Keyed by `(system code, day index)` so iteration groups a
    /// system's days contiguously in time order.
    partitions: BTreeMap<(u8, i64), Partition>,
    next_seq: u64,
}

/// The day index of `time` (days since the epoch, floored).
fn day_of(time: Timestamp) -> i64 {
    time.as_micros().div_euclid(DAY_MICROS)
}

/// The partition directory name for day index `day`.
fn day_dir_name(day: i64) -> String {
    let (y, m, d, _, _, _) = Timestamp::from_micros(day * DAY_MICROS).to_civil();
    format!("{y:04}-{m:02}-{d:02}")
}

/// Parses a `YYYY-MM-DD` partition directory name back to its day
/// index; `None` for foreign directory names.
fn parse_day_dir(name: &str) -> Option<i64> {
    let bytes = name.as_bytes();
    if bytes.len() != 10 || bytes[4] != b'-' || bytes[7] != b'-' {
        return None;
    }
    let year: i32 = name[..4].parse().ok()?;
    let month: u32 = name[5..7].parse().ok()?;
    let day: u32 = name[8..10].parse().ok()?;
    if !(1..=12).contains(&month) || !(1..=31).contains(&day) {
        return None;
    }
    Some(day_of(Timestamp::from_ymd_hms(year, month, day, 0, 0, 0)))
}

impl SegmentStore {
    /// Opens (or creates) the store rooted at `root`: loads the
    /// catalog, opens every partition (recovering WAL tails), and
    /// restores the global sequence counter past everything on disk.
    ///
    /// # Errors
    ///
    /// I/O failures, or corruption in the catalog, a manifest, or a
    /// live segment's zone.
    pub fn open(root: &Path, config: StoreConfig) -> io::Result<SegmentStore> {
        std::fs::create_dir_all(root)?;
        let catalog = Catalog::load(&root.join(CATALOG_FILE))?;
        let mut partitions = BTreeMap::new();
        let mut next_seq = 0u64;
        for entry in std::fs::read_dir(root)? {
            let entry = entry?;
            if !entry.file_type()?.is_dir() {
                continue;
            }
            let slug = entry.file_name();
            let Some(system) = slug.to_str().and_then(slug_to_code) else {
                continue;
            };
            for day_entry in std::fs::read_dir(entry.path())? {
                let day_entry = day_entry?;
                let Some(day) = day_entry.file_name().to_str().and_then(parse_day_dir) else {
                    continue;
                };
                let partition = Partition::open(&day_entry.path())?;
                let high = partition
                    .sealed
                    .iter()
                    .map(|s| s.zone.max_seq)
                    .chain(partition.tail.iter().map(|r| r.seq))
                    .max();
                if let Some(high) = high {
                    next_seq = next_seq.max(high + 1);
                }
                partitions.insert((system, day), partition);
            }
        }
        Ok(SegmentStore {
            root: root.to_path_buf(),
            config,
            catalog,
            catalog_dirty: false,
            partitions,
            next_seq,
        })
    }

    /// The host/category name tables.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Interns a host name, returning its stable id.
    pub fn intern_host(&mut self, name: &str) -> NodeId {
        let before = self.catalog.hosts.len();
        let id = self.catalog.hosts.intern(name);
        self.catalog_dirty |= self.catalog.hosts.len() != before;
        id
    }

    /// Registers a category, returning its stable id.
    pub fn register_category(
        &mut self,
        name: &str,
        system: SystemId,
        class: AlertType,
    ) -> CategoryId {
        let before = self.catalog.categories.len();
        let id = self.catalog.categories.register(name, system, class);
        self.catalog_dirty |= self.catalog.categories.len() != before;
        id
    }

    /// Persists the catalog if any name was added since the last
    /// write. Called automatically before any record is appended, so
    /// on-disk records never reference an id the on-disk catalog
    /// lacks.
    ///
    /// # Errors
    ///
    /// Any I/O failure writing the catalog.
    pub fn flush_catalog(&mut self) -> io::Result<()> {
        if self.catalog_dirty {
            self.catalog.persist(&self.root.join(CATALOG_FILE))?;
            self.catalog_dirty = false;
        }
        Ok(())
    }

    /// Appends `records` durably. Each record's `seq` is assigned
    /// here (input order = admission order); records are routed to
    /// their `(system, day)` partition's WAL, and any partition whose
    /// tail reaches the seal threshold is sealed.
    ///
    /// # Errors
    ///
    /// Any I/O failure persisting the catalog, WAL frames, or a seal.
    pub fn append(
        &mut self,
        records: &[StoredAlert],
        rec: &ThreadRecorder,
        metrics: &StoreMetrics,
    ) -> io::Result<()> {
        if records.is_empty() {
            return Ok(());
        }
        self.flush_catalog()?;
        // Route in admission order, batching consecutive same-partition
        // records into one WAL frame each.
        let mut batches: BTreeMap<(u8, i64), Vec<StoredAlert>> = BTreeMap::new();
        for r in records {
            let mut routed = *r;
            routed.seq = self.next_seq;
            self.next_seq += 1;
            let system = system_code(self.catalog.categories.def(r.category).system);
            batches
                .entry((system, day_of(r.time)))
                .or_default()
                .push(routed);
        }
        let mut bytes = 0u64;
        let mut appended = 0u64;
        {
            let _span = rec.span(metrics.wal);
            for (key, batch) in &batches {
                let partition = self.partition_mut(*key)?;
                partition.append(batch)?;
                appended += batch.len() as u64;
                bytes += (batch.len() * std::mem::size_of::<StoredAlert>()) as u64;
            }
            rec.stage_items(metrics.wal, appended, bytes);
        }
        let seal_records = self.config.seal_records;
        for key in batches.keys() {
            let partition = self.partitions.get_mut(key).expect("just appended");
            if partition.tail.len() >= seal_records {
                let _span = rec.span(metrics.seal);
                let sealed = partition.tail.len() as u64;
                partition.seal(&self.catalog.categories)?;
                rec.stage_items(metrics.seal, sealed, 0);
            }
        }
        Ok(())
    }

    /// Seals every partition's tail (e.g. at end of ingest or on
    /// graceful shutdown) and flushes the catalog.
    ///
    /// # Errors
    ///
    /// Any I/O failure sealing or flushing.
    pub fn seal_all(&mut self, rec: &ThreadRecorder, metrics: &StoreMetrics) -> io::Result<()> {
        self.flush_catalog()?;
        let _span = rec.span(metrics.seal);
        let mut sealed = 0u64;
        for partition in self.partitions.values_mut() {
            sealed += partition.tail.len() as u64;
            partition.seal(&self.catalog.categories)?;
        }
        rec.stage_items(metrics.seal, sealed, 0);
        Ok(())
    }

    /// Compacts every partition: adjacent runs of segments smaller
    /// than half the seal threshold are merged. Returns the number of
    /// segments removed by merging.
    ///
    /// # Errors
    ///
    /// Any I/O failure reading or rewriting segments.
    pub fn compact(&mut self, rec: &ThreadRecorder, metrics: &StoreMetrics) -> io::Result<usize> {
        let _span = rec.span(metrics.compact);
        let threshold = (self.config.seal_records as u64 / 2).max(2);
        let mut removed = 0usize;
        for partition in self.partitions.values_mut() {
            removed += partition.compact(&self.catalog.categories, threshold)?;
        }
        rec.stage_items(metrics.compact, removed as u64, 0);
        Ok(removed)
    }

    /// Runs `filter` over the store, returning matches sorted by
    /// `(time, seq)` — i.e. time order with admission-order ties.
    ///
    /// With `prune` set, whole partitions are skipped by system and
    /// day and sealed segments by zone map before any payload is
    /// read; pruning is conservative, so the result is identical to a
    /// full scan. The returned [`ScanStats`] is this scan's by-value
    /// accounting — what pruning skipped versus what was read and
    /// decoded — and the same numbers are credited to the cumulative
    /// `metrics` counters through `rec`.
    ///
    /// # Errors
    ///
    /// Any I/O failure or corruption reading a segment payload.
    pub fn scan(
        &self,
        filter: &ScanFilter,
        prune: bool,
        rec: &ThreadRecorder,
        metrics: &StoreMetrics,
    ) -> io::Result<(Vec<StoredAlert>, ScanStats)> {
        let day_from = filter.from.map(day_of);
        let day_to = filter.to.map(day_of);
        let system = filter.system.map(system_code);
        let mut out: Vec<StoredAlert> = Vec::new();
        let mut stats = ScanStats::default();
        for (&(part_system, day), partition) in &self.partitions {
            let partition_pruned = prune
                && (system.is_some_and(|s| s != part_system)
                    || day_from.is_some_and(|d| day < d)
                    || day_to.is_some_and(|d| day > d));
            if partition_pruned {
                stats.partitions_pruned += 1;
                stats.zones_pruned += partition.sealed.len() as u64;
                continue;
            }
            stats.partitions_scanned += 1;
            for segment in &partition.sealed {
                if prune && !segment.zone.may_match(filter) {
                    stats.zones_pruned += 1;
                    continue;
                }
                let (records, read) = segment.read_payload(self.config.cache_payloads)?;
                stats.zones_scanned += 1;
                stats.bytes_read += read;
                stats.rows_decoded += records.len() as u64;
                out.extend(
                    records
                        .iter()
                        .filter(|r| filter.matches(r, &self.catalog.categories)),
                );
            }
            stats.rows_decoded += partition.tail.len() as u64;
            out.extend(
                partition
                    .tail
                    .iter()
                    .filter(|r| filter.matches(r, &self.catalog.categories)),
            );
        }
        rec.add(metrics.segments_pruned, stats.zones_pruned);
        rec.add(metrics.segments_scanned, stats.zones_scanned);
        rec.add(metrics.bytes_read, stats.bytes_read);
        out.sort_by_key(|r| (r.time, r.seq));
        Ok((out, stats))
    }

    /// Total records across all partitions (sealed + tails).
    pub fn record_count(&self) -> u64 {
        self.partitions.values().map(Partition::record_count).sum()
    }

    /// Open partitions.
    pub fn partition_count(&self) -> usize {
        self.partitions.len()
    }

    /// Sealed segments across all partitions.
    pub fn segment_count(&self) -> usize {
        self.partitions.values().map(|p| p.sealed.len()).sum()
    }

    /// The next sequence an append would assign (also the count of
    /// sequences ever assigned; used as a cheap store version).
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn partition_mut(&mut self, key: (u8, i64)) -> io::Result<&mut Partition> {
        if !self.partitions.contains_key(&key) {
            let system = system_from_code(key.0).ok_or_else(|| corrupt("partition system code"))?;
            let dir = self
                .root
                .join(system_slug(system))
                .join(day_dir_name(key.1));
            self.partitions.insert(key, Partition::open(&dir)?);
        }
        Ok(self.partitions.get_mut(&key).expect("just inserted"))
    }
}

/// Inverse of [`system_slug`] for directory enumeration.
fn slug_to_code(slug: &str) -> Option<u8> {
    (0..u8::MAX).find(|&code| system_from_code(code).is_some_and(|s| system_slug(s) == slug))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sclog_types::Severity;

    fn disabled_rec() -> ThreadRecorder {
        Recorder::disabled().thread("test")
    }

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "sclog-store-storetest-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Two systems, two days, a few hosts.
    fn build(root: &Path, seal_records: usize) -> SegmentStore {
        let mut store = SegmentStore::open(
            root,
            StoreConfig {
                seal_records,
                cache_payloads: false,
            },
        )
        .unwrap();
        let lib = store.register_category("PBS_CHK", SystemId::Liberty, AlertType::Software);
        let bgl = store.register_category("KERNDTLB", SystemId::BlueGeneL, AlertType::Hardware);
        let h0 = store.intern_host("sn373");
        let h1 = store.intern_host("r27-m1");
        let records: Vec<StoredAlert> = (0..40i64)
            .map(|i| StoredAlert {
                time: Timestamp::from_micros(i * DAY_MICROS / 20),
                host: if i % 2 == 0 { h0 } else { h1 },
                category: if i % 2 == 0 { lib } else { bgl },
                severity: Severity::None,
                message_index: i as usize,
                filtered: i % 4 == 0,
                seq: 0,
            })
            .collect();
        store
            .append(&records, &disabled_rec(), &StoreMetrics::disabled())
            .unwrap();
        store
    }

    #[test]
    fn append_seal_reopen_scan_round_trip() {
        let root = temp_root("roundtrip");
        let mut store = build(&root, 8);
        store
            .seal_all(&disabled_rec(), &StoreMetrics::disabled())
            .unwrap();
        assert_eq!(store.record_count(), 40);
        assert_eq!(store.partition_count(), 4, "2 systems × 2 days");
        let (full, full_stats) = store
            .scan(
                &ScanFilter::all(),
                false,
                &disabled_rec(),
                &StoreMetrics::disabled(),
            )
            .unwrap();
        assert_eq!(full.len(), 40);
        assert_eq!(full_stats.rows_decoded, 40, "full scan decodes every row");
        assert_eq!(full_stats.zones_pruned, 0, "nothing pruned without prune");
        assert_eq!(full_stats.partitions_scanned, 4);
        assert!(full
            .windows(2)
            .all(|w| (w[0].time, w[0].seq) <= (w[1].time, w[1].seq)));
        drop(store);

        let store = SegmentStore::open(&root, StoreConfig::default()).unwrap();
        assert_eq!(store.record_count(), 40);
        assert_eq!(store.next_seq(), 40);
        let (again, _) = store
            .scan(
                &ScanFilter::all(),
                true,
                &disabled_rec(),
                &StoreMetrics::disabled(),
            )
            .unwrap();
        assert_eq!(again, full);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn pruned_scan_equals_full_scan_on_filters() {
        let root = temp_root("prune");
        let mut store = build(&root, 8);
        store
            .seal_all(&disabled_rec(), &StoreMetrics::disabled())
            .unwrap();
        let filters = [
            ScanFilter {
                system: Some(SystemId::Liberty),
                ..ScanFilter::all()
            },
            ScanFilter {
                from: Some(Timestamp::from_micros(DAY_MICROS)),
                to: Some(Timestamp::from_micros(DAY_MICROS + DAY_MICROS / 2)),
                ..ScanFilter::all()
            },
            ScanFilter {
                filtered: Some(true),
                classes: Some(0b001),
                ..ScanFilter::all()
            },
            ScanFilter {
                hosts: Some(vec![1]),
                ..ScanFilter::all()
            },
        ];
        for filter in &filters {
            let (pruned, pstats) = store
                .scan(filter, true, &disabled_rec(), &StoreMetrics::disabled())
                .unwrap();
            let (full, fstats) = store
                .scan(filter, false, &disabled_rec(), &StoreMetrics::disabled())
                .unwrap();
            assert_eq!(pruned, full, "filter {filter:?}");
            // Pruning only moves work from scanned to pruned.
            assert_eq!(
                pstats.zones_pruned + pstats.zones_scanned,
                fstats.zones_scanned,
                "filter {filter:?}"
            );
        }
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn pruning_actually_skips_segments() {
        let root = temp_root("counters");
        let mut store = build(&root, 8);
        store
            .seal_all(&disabled_rec(), &StoreMetrics::disabled())
            .unwrap();
        let recorder = Recorder::new();
        let metrics = StoreMetrics::register(&recorder);
        let rec = recorder.thread("scan");
        let filter = ScanFilter {
            system: Some(SystemId::Liberty),
            ..ScanFilter::all()
        };
        let (_, stats) = store.scan(&filter, true, &rec, &metrics).unwrap();
        drop(rec);
        let snapshot = recorder.snapshot();
        let pruned = snapshot.counter("store.segments_pruned").unwrap();
        let scanned = snapshot.counter("store.segments_scanned").unwrap();
        assert!(pruned > 0, "BlueGene/L partitions must be pruned");
        assert!(scanned > 0);
        assert!(snapshot.counter("store.bytes_read").unwrap() > 0);
        // The by-value stats and the global counters are one scan's
        // worth of the same accounting here.
        assert_eq!(stats.zones_pruned, pruned);
        assert_eq!(stats.zones_scanned, scanned);
        assert_eq!(
            stats.bytes_read,
            snapshot.counter("store.bytes_read").unwrap()
        );
        assert!(stats.partitions_pruned > 0, "off-system partitions skipped");
        assert!(stats.rows_decoded > 0);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn compaction_preserves_scan_results() {
        let root = temp_root("compactscan");
        let mut store = build(&root, 4);
        store
            .seal_all(&disabled_rec(), &StoreMetrics::disabled())
            .unwrap();
        let (before, _) = store
            .scan(
                &ScanFilter::all(),
                false,
                &disabled_rec(),
                &StoreMetrics::disabled(),
            )
            .unwrap();
        let segments_before = store.segment_count();
        // Threshold seal_records/2 = 2: only sub-2-record segments
        // merge, so force a finer store to exercise merging.
        let removed = store
            .compact(&disabled_rec(), &StoreMetrics::disabled())
            .unwrap();
        let (after, _) = store
            .scan(
                &ScanFilter::all(),
                true,
                &disabled_rec(),
                &StoreMetrics::disabled(),
            )
            .unwrap();
        assert_eq!(after, before);
        assert!(store.segment_count() <= segments_before);
        let _ = removed;
        std::fs::remove_dir_all(&root).unwrap();
    }
}
