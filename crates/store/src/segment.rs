//! Sealed segment files: header + zone map + CRC-framed payload.
//!
//! Layout (integers little-endian):
//!
//! ```text
//! SEGMENT_MAGIC (8)  version u16  zone_len u32
//! zone-map bytes     zone CRC32 u32
//! record payload     payload CRC32 u32
//! ```
//!
//! The zone map sits ahead of the payload with its own CRC so pruning
//! reads a few dozen bytes and never touches (or validates) the
//! payload. Opening a segment reads only the zone; `read_payload`
//! fetches and CRC-checks the records on demand.

use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use sclog_types::segment::{SEGMENT_FORMAT_VERSION, SEGMENT_MAGIC};
use sclog_types::CategoryRegistry;

use crate::crc::crc32;
use crate::record::{decode_batch, encode_batch, StoredAlert};
use crate::varint::corrupt;
use crate::zonemap::ZoneMap;

/// Fixed header size: magic + version + zone length.
const HEADER_LEN: usize = 8 + 2 + 4;

/// One sealed segment: its file path and resident zone map.
#[derive(Debug)]
pub struct Segment {
    /// Segment id within its partition (also names the file).
    pub id: u32,
    /// Path of the segment file.
    pub path: PathBuf,
    /// Resident summary used for pruning.
    pub zone: ZoneMap,
    /// Decoded payload, memoized after the first un-pruned read when
    /// the store is configured to cache.
    cache: std::sync::OnceLock<std::sync::Arc<Vec<StoredAlert>>>,
}

/// The file name of segment `id`.
pub fn segment_file_name(id: u32) -> String {
    format!("seg-{id:08}.seg")
}

/// Writes `records` as segment `id` in `dir`, returning the sealed
/// [`Segment`]. The file is written to a temporary name and renamed
/// into place so a crash mid-write never leaves a live, half-written
/// segment (unreferenced garbage is swept on open).
///
/// # Errors
///
/// Any I/O failure writing, syncing, or renaming the file.
///
/// # Panics
///
/// Panics on an empty batch — empty segments are never sealed.
pub fn write_segment(
    dir: &Path,
    id: u32,
    records: &[StoredAlert],
    categories: &CategoryRegistry,
) -> io::Result<Segment> {
    let mut payload = Vec::new();
    encode_batch(records, &mut payload);
    let mut zone = ZoneMap::build(records, categories);
    zone.payload_len = payload.len() as u64;

    let mut zone_bytes = Vec::new();
    zone.encode(&mut zone_bytes);

    let mut file_bytes = Vec::with_capacity(HEADER_LEN + zone_bytes.len() + payload.len() + 8);
    file_bytes.extend_from_slice(&SEGMENT_MAGIC);
    file_bytes.extend_from_slice(&SEGMENT_FORMAT_VERSION.to_le_bytes());
    file_bytes.extend_from_slice(&(zone_bytes.len() as u32).to_le_bytes());
    file_bytes.extend_from_slice(&zone_bytes);
    file_bytes.extend_from_slice(&crc32(&zone_bytes).to_le_bytes());
    file_bytes.extend_from_slice(&payload);
    file_bytes.extend_from_slice(&crc32(&payload).to_le_bytes());

    let path = dir.join(segment_file_name(id));
    let tmp = dir.join(format!("{}.tmp", segment_file_name(id)));
    {
        let mut f = File::create(&tmp)?;
        f.write_all(&file_bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, &path)?;
    Ok(Segment {
        id,
        path,
        zone,
        cache: std::sync::OnceLock::new(),
    })
}

impl Segment {
    /// Opens segment `id` in `dir`, reading and validating only the
    /// header and zone map.
    ///
    /// # Errors
    ///
    /// `InvalidData` on a bad magic, foreign format version, zone CRC
    /// mismatch, or a file too short for its declared payload.
    pub fn open(dir: &Path, id: u32) -> io::Result<Segment> {
        let path = dir.join(segment_file_name(id));
        let mut file = File::open(&path)?;
        let mut header = [0u8; HEADER_LEN];
        file.read_exact(&mut header)
            .map_err(|_| corrupt("segment header (truncated)"))?;
        if header[..8] != SEGMENT_MAGIC {
            return Err(corrupt("segment magic"));
        }
        let version = u16::from_le_bytes([header[8], header[9]]);
        if version != SEGMENT_FORMAT_VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "store: segment format v{version}, this build reads v{SEGMENT_FORMAT_VERSION}"
                ),
            ));
        }
        let zone_len =
            u32::from_le_bytes([header[10], header[11], header[12], header[13]]) as usize;
        if zone_len > 1 << 24 {
            return Err(corrupt("segment zone length"));
        }
        let mut zone_bytes = vec![0u8; zone_len + 4];
        file.read_exact(&mut zone_bytes)
            .map_err(|_| corrupt("segment zone (truncated)"))?;
        let crc_bytes: [u8; 4] = zone_bytes[zone_len..].try_into().expect("4 bytes");
        if crc32(&zone_bytes[..zone_len]) != u32::from_le_bytes(crc_bytes) {
            return Err(corrupt("segment zone CRC"));
        }
        let zone = ZoneMap::decode(&zone_bytes[..zone_len])?;
        let expected = (HEADER_LEN + zone_len + 4) as u64 + zone.payload_len + 4;
        if file.metadata()?.len() != expected {
            return Err(corrupt("segment length"));
        }
        Ok(Segment {
            id,
            path,
            zone,
            cache: std::sync::OnceLock::new(),
        })
    }

    /// Reads, CRC-checks, and decodes the record payload. Returns the
    /// records plus the number of file bytes actually read (zero on a
    /// cache hit). `cache` memoizes the decoded payload for the
    /// segment's lifetime.
    ///
    /// # Errors
    ///
    /// `InvalidData` on payload CRC mismatch or a malformed batch.
    pub fn read_payload(&self, cache: bool) -> io::Result<(std::sync::Arc<Vec<StoredAlert>>, u64)> {
        if cache {
            if let Some(hit) = self.cache.get() {
                return Ok((std::sync::Arc::clone(hit), 0));
            }
        }
        let (records, bytes_read) = self.read_payload_uncached()?;
        let records = std::sync::Arc::new(records);
        if cache {
            // A concurrent reader may have raced us here; either copy
            // decoded from identical bytes, so keep whichever won.
            let _ = self.cache.set(std::sync::Arc::clone(&records));
        }
        Ok((records, bytes_read))
    }

    fn read_payload_uncached(&self) -> io::Result<(Vec<StoredAlert>, u64)> {
        let mut file = File::open(&self.path)?;
        let mut header = [0u8; HEADER_LEN];
        file.read_exact(&mut header)?;
        let zone_len = u32::from_le_bytes([header[10], header[11], header[12], header[13]]) as u64;
        file.seek(SeekFrom::Start(HEADER_LEN as u64 + zone_len + 4))?;
        let mut payload = vec![0u8; self.zone.payload_len as usize + 4];
        file.read_exact(&mut payload)
            .map_err(|_| corrupt("segment payload (truncated)"))?;
        let body = &payload[..self.zone.payload_len as usize];
        let crc_bytes: [u8; 4] = payload[self.zone.payload_len as usize..]
            .try_into()
            .expect("4 bytes");
        if crc32(body) != u32::from_le_bytes(crc_bytes) {
            return Err(corrupt("segment payload CRC"));
        }
        let mut records = Vec::new();
        decode_batch(body, &mut records)?;
        if records.len() as u64 != self.zone.count {
            return Err(corrupt("segment record count"));
        }
        Ok((
            records,
            (HEADER_LEN as u64) + zone_len + 4 + payload.len() as u64,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sclog_types::{AlertType, CategoryId, NodeId, Severity, SystemId, Timestamp};

    fn fixture() -> (CategoryRegistry, Vec<StoredAlert>) {
        let mut reg = CategoryRegistry::new();
        reg.register("CAT A", SystemId::Liberty, AlertType::Hardware);
        let records: Vec<StoredAlert> = (0..10)
            .map(|i| StoredAlert {
                time: Timestamp::from_micros(1_000_000 + i),
                host: NodeId::from_index(i as u32 % 3),
                category: CategoryId::from_index(0),
                severity: Severity::None,
                message_index: i as usize,
                filtered: i % 2 == 0,
                seq: i as u64,
            })
            .collect();
        (reg, records)
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("sclog-store-segtest-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn seal_open_read_round_trip() {
        let (reg, records) = fixture();
        let dir = temp_dir("roundtrip");
        let sealed = write_segment(&dir, 7, &records, &reg).unwrap();
        let reopened = Segment::open(&dir, 7).unwrap();
        assert_eq!(reopened.zone, sealed.zone);
        let (got, bytes) = reopened.read_payload(true).unwrap();
        assert_eq!(*got, records);
        assert!(bytes > 0, "first read touches the file");
        let (_, bytes) = reopened.read_payload(true).unwrap();
        assert_eq!(bytes, 0, "second read is a cache hit");
        let (_, bytes) = reopened.read_payload(false).unwrap();
        assert!(bytes > 0, "uncached read touches the file again");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_payload_is_detected() {
        let (reg, records) = fixture();
        let dir = temp_dir("corrupt");
        let sealed = write_segment(&dir, 1, &records, &reg).unwrap();
        let mut bytes = std::fs::read(&sealed.path).unwrap();
        let flip = bytes.len() - 10; // inside the payload
        bytes[flip] ^= 0xFF;
        std::fs::write(&sealed.path, &bytes).unwrap();
        let reopened = Segment::open(&dir, 1).unwrap();
        assert!(reopened.read_payload(false).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn foreign_version_is_refused() {
        let (reg, records) = fixture();
        let dir = temp_dir("version");
        let sealed = write_segment(&dir, 2, &records, &reg).unwrap();
        let mut bytes = std::fs::read(&sealed.path).unwrap();
        bytes[8] = 0xFF; // version low byte
        std::fs::write(&sealed.path, &bytes).unwrap();
        let err = Segment::open(&dir, 2).unwrap_err();
        assert!(err.to_string().contains("format"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
