//! Zone-map-pruned, time-partitioned on-disk segment store.
//!
//! The paper works from *months* of logs per system — Table 1's five
//! corpora span 139 days to over a year — and any serving layer over
//! such a corpus lives or dies by how little of it a query touches.
//! This crate is that layer for `sclogd`: an append-only store
//! partitioned by `(system, day)`, holding alerts in a compact
//! in-tree binary format (varint-delta timestamps, interned host and
//! category ids, CRC-32 on every durable block), std-only per the
//! workspace's hermetic policy.
//!
//! The architecture, bottom-up:
//!
//! * [`StoredAlert`] — the record at rest, plus its delta-varint
//!   batch codec (shared by WAL frames and segment payloads).
//! * [`ZoneMap`] / [`ScanFilter`] — each sealed segment carries a
//!   small resident summary (time min/max, category bitset, host-id
//!   set, severity/class bitsets); [`ZoneMap::may_match`] lets a scan
//!   prove a segment empty *without opening it*. Pruning is
//!   conservative, so a pruned scan is always result-identical to a
//!   full one.
//! * `Wal` / `Partition` — appends land in a per-partition
//!   write-ahead log whose recovery truncates a torn tail at the last
//!   valid frame; sealing moves the tail into an immutable segment
//!   under an atomically-renamed manifest, and a compactor merges
//!   runs of small segments.
//! * [`SegmentStore`] — the facade: routes appends by `(system,
//!   day)`, assigns the global admission sequence that keeps scans
//!   deterministic, prunes whole partitions then individual segments,
//!   and reports `store.segments_pruned` / `store.segments_scanned` /
//!   `store.bytes_read` plus WAL/seal/compaction spans through
//!   `sclog-obs`.
//!
//! # Examples
//!
//! ```
//! use sclog_obs::Recorder;
//! use sclog_store::{ScanFilter, SegmentStore, StoreConfig, StoreMetrics, StoredAlert};
//! use sclog_types::{AlertType, Severity, SystemId, Timestamp};
//!
//! let root = std::env::temp_dir().join(format!("sclog-store-doc-{}", std::process::id()));
//! # let _ = std::fs::remove_dir_all(&root);
//! let mut store = SegmentStore::open(&root, StoreConfig::default()).unwrap();
//! let host = store.intern_host("sn373");
//! let category = store.register_category("PBS_CHK", SystemId::Liberty, AlertType::Software);
//! let rec = Recorder::disabled().thread("doc");
//! let metrics = StoreMetrics::disabled();
//! store
//!     .append(
//!         &[StoredAlert {
//!             time: Timestamp::from_ymd_hms(2005, 3, 7, 7, 30, 0),
//!             host,
//!             category,
//!             severity: Severity::None,
//!             message_index: 0,
//!             filtered: true,
//!             seq: 0, // assigned by the store
//!         }],
//!         &rec,
//!         &metrics,
//!     )
//!     .unwrap();
//! store.seal_all(&rec, &metrics).unwrap();
//! let (hits, stats) = store.scan(&ScanFilter::all(), true, &rec, &metrics).unwrap();
//! assert_eq!(hits.len(), 1);
//! assert_eq!(stats.rows_decoded, 1);
//! # std::fs::remove_dir_all(&root).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod catalog;
mod crc;
mod partition;
mod record;
mod segment;
mod store;
mod varint;
pub mod wal;
mod zonemap;

pub use catalog::Catalog;
pub use crc::crc32;
pub use record::{decode_batch, encode_batch, StoredAlert};
pub use sclog_types::trace::ScanStats;
pub use segment::Segment;
pub use store::{SegmentStore, StoreConfig, StoreMetrics};
pub use zonemap::{ScanFilter, ZoneMap};
