//! LEB128 varints and zigzag signed mapping — the store's only
//! integer wire encoding.

use std::io;

/// Appends `v` as an LEB128 varint.
pub fn put_u64(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Appends `v` zigzag-mapped (`0, -1, 1, -2, …` → `0, 1, 2, 3, …`),
/// so small-magnitude deltas of either sign stay one byte.
pub fn put_i64(out: &mut Vec<u8>, v: i64) {
    put_u64(out, ((v << 1) ^ (v >> 63)) as u64);
}

/// A decode failure; surfaced as `InvalidData` so recovery paths can
/// treat a torn tail like any other corruption.
pub fn corrupt(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("store: corrupt {what}"))
}

/// Reads an LEB128 varint from `buf` at `*pos`, advancing it.
///
/// # Errors
///
/// `InvalidData` when the buffer ends mid-varint or the value needs
/// more than 64 bits.
pub fn get_u64(buf: &[u8], pos: &mut usize) -> io::Result<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos).ok_or_else(|| corrupt("varint (truncated)"))?;
        *pos += 1;
        if shift == 63 && byte > 1 {
            return Err(corrupt("varint (overflow)"));
        }
        v |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(corrupt("varint (too long)"));
        }
    }
}

/// Reads a zigzag-mapped signed varint (inverse of [`put_i64`]).
///
/// # Errors
///
/// Propagates [`get_u64`]'s corruption errors.
pub fn get_i64(buf: &[u8], pos: &mut usize) -> io::Result<i64> {
    let z = get_u64(buf, pos)?;
    Ok((z >> 1) as i64 ^ -((z & 1) as i64))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_round_trips_edge_values() {
        for v in [0, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_u64(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_u64(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn i64_round_trips_both_signs() {
        for v in [0, -1, 1, -64, 63, i64::MIN, i64::MAX] {
            let mut buf = Vec::new();
            put_i64(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_i64(&buf, &mut pos).unwrap(), v);
        }
    }

    #[test]
    fn truncated_and_oversized_inputs_error() {
        let mut pos = 0;
        assert!(get_u64(&[0x80], &mut pos).is_err());
        let mut pos = 0;
        assert!(get_u64(&[0x80; 11], &mut pos).is_err());
        // u64::MAX is ten bytes with top byte 0x01; 0x02 overflows.
        let mut max = vec![0xFF; 9];
        max.push(0x01);
        let mut pos = 0;
        assert_eq!(get_u64(&max, &mut pos).unwrap(), u64::MAX);
        let mut over = vec![0xFF; 9];
        over.push(0x02);
        let mut pos = 0;
        assert!(get_u64(&over, &mut pos).is_err());
    }
}
