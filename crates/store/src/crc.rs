//! CRC-32 (IEEE 802.3, reflected) over a compile-time table.
//!
//! Every durable block in the store — zone map, segment payload, WAL
//! frame, manifest, catalog — carries a CRC so a torn or bit-flipped
//! write is detected before its contents are believed.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC-32 of `data`, matching the common `crc32`/zlib checksum.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &byte in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(byte)) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn single_bit_flips_change_the_sum() {
        let base = crc32(b"hello segment store");
        for i in 0..19 * 8 {
            let mut bytes = b"hello segment store".to_vec();
            bytes[i / 8] ^= 1 << (i % 8);
            assert_ne!(crc32(&bytes), base, "bit {i}");
        }
    }
}
