//! Per-partition write-ahead log: the crash-safe tail of a partition.
//!
//! Layout: `WAL_MAGIC` (8 bytes) + format version `u16`, then frames
//! of `[len u32 LE][crc32 u32 LE][payload]` where the payload is one
//! [`encode_batch`] batch. Appends write a whole frame and sync;
//! recovery walks frames from the front and truncates the file at the
//! first torn or corrupt one, so a crash mid-append loses at most the
//! un-acknowledged frame and never yields a partial record.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use sclog_types::segment::{SEGMENT_FORMAT_VERSION, WAL_MAGIC};

use crate::crc::crc32;
use crate::record::{decode_batch, encode_batch, StoredAlert};
use crate::varint::corrupt;

/// Magic + version.
const HEADER_LEN: u64 = 8 + 2;

/// An open write-ahead log, positioned for appends.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    len: u64,
}

impl Wal {
    /// Opens (or creates) the WAL at `path`, recovering any surviving
    /// records. A torn tail is truncated at the last valid frame; a
    /// file too short to hold its header (the create itself tore) is
    /// rewritten empty, since the header is synced before any frame
    /// can have been acknowledged.
    ///
    /// # Errors
    ///
    /// I/O failures, or `InvalidData` for a foreign format version.
    pub fn open(path: &Path) -> io::Result<(Wal, Vec<StoredAlert>)> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;

        if bytes.len() < HEADER_LEN as usize || bytes[..8] != WAL_MAGIC {
            file.set_len(0)?;
            file.seek(SeekFrom::Start(0))?;
            let mut header = Vec::with_capacity(HEADER_LEN as usize);
            header.extend_from_slice(&WAL_MAGIC);
            header.extend_from_slice(&SEGMENT_FORMAT_VERSION.to_le_bytes());
            file.write_all(&header)?;
            file.sync_all()?;
            return Ok((
                Wal {
                    file,
                    path: path.to_path_buf(),
                    len: HEADER_LEN,
                },
                Vec::new(),
            ));
        }
        let version = u16::from_le_bytes([bytes[8], bytes[9]]);
        if version != SEGMENT_FORMAT_VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("store: WAL format v{version}, this build reads v{SEGMENT_FORMAT_VERSION}"),
            ));
        }

        let mut records = Vec::new();
        let mut pos = HEADER_LEN as usize;
        loop {
            let Some(frame_end) = valid_frame_end(&bytes, pos, &mut records) else {
                break;
            };
            pos = frame_end;
        }
        if pos as u64 != bytes.len() as u64 {
            // Torn tail: drop everything from the first bad frame.
            file.set_len(pos as u64)?;
            file.sync_all()?;
        }
        file.seek(SeekFrom::Start(pos as u64))?;
        Ok((
            Wal {
                file,
                path: path.to_path_buf(),
                len: pos as u64,
            },
            records,
        ))
    }

    /// Appends one batch as a single synced frame.
    ///
    /// # Errors
    ///
    /// Any I/O failure writing or syncing.
    pub fn append(&mut self, records: &[StoredAlert]) -> io::Result<()> {
        let mut payload = Vec::new();
        encode_batch(records, &mut payload);
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        self.file.write_all(&frame)?;
        self.file.sync_data()?;
        self.len += frame.len() as u64;
        Ok(())
    }

    /// Discards every frame (after a seal), keeping the header.
    ///
    /// # Errors
    ///
    /// Any I/O failure truncating or syncing.
    pub fn reset(&mut self) -> io::Result<()> {
        self.file.set_len(HEADER_LEN)?;
        self.file.sync_all()?;
        self.file.seek(SeekFrom::Start(HEADER_LEN))?;
        self.len = HEADER_LEN;
        Ok(())
    }

    /// Bytes currently on disk, header included.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the log holds no frames.
    pub fn is_empty(&self) -> bool {
        self.len == HEADER_LEN
    }

    /// The log's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Validates the frame at `pos`; on success decodes it into `records`
/// and returns the frame's end offset. `None` means torn or corrupt.
fn valid_frame_end(bytes: &[u8], pos: usize, records: &mut Vec<StoredAlert>) -> Option<usize> {
    let header = bytes.get(pos..pos + 8)?;
    let len = u32::from_le_bytes(header[..4].try_into().expect("4 bytes")) as usize;
    let crc = u32::from_le_bytes(header[4..].try_into().expect("4 bytes"));
    let payload = bytes.get(pos + 8..pos + 8 + len)?;
    if crc32(payload) != crc {
        return None;
    }
    let before = records.len();
    if decode_batch(payload, records).is_err() {
        records.truncate(before);
        return None;
    }
    Some(pos + 8 + len)
}

/// Decodes every valid frame in raw WAL `bytes` (test/tooling helper
/// mirroring recovery, without touching a file).
///
/// # Errors
///
/// `InvalidData` when the header itself is malformed.
pub fn replay(bytes: &[u8]) -> io::Result<Vec<StoredAlert>> {
    if bytes.len() < HEADER_LEN as usize || bytes[..8] != WAL_MAGIC {
        return Err(corrupt("WAL header"));
    }
    let mut records = Vec::new();
    let mut pos = HEADER_LEN as usize;
    while let Some(end) = valid_frame_end(bytes, pos, &mut records) {
        pos = end;
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sclog_types::{CategoryId, NodeId, Severity, Timestamp};

    fn rec(seq: u64) -> StoredAlert {
        StoredAlert {
            time: Timestamp::from_micros(seq as i64 * 1000),
            host: NodeId::from_index(seq as u32 % 4),
            category: CategoryId::from_index(0),
            severity: Severity::None,
            message_index: seq as usize,
            filtered: seq % 2 == 0,
            seq,
        }
    }

    fn temp_wal(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sclog-store-waltest-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{tag}.wal"))
    }

    #[test]
    fn append_reopen_recovers_all_frames() {
        let path = temp_wal("roundtrip");
        let _ = std::fs::remove_file(&path);
        let (mut wal, recovered) = Wal::open(&path).unwrap();
        assert!(recovered.is_empty());
        assert!(wal.is_empty());
        wal.append(&[rec(0), rec(1)]).unwrap();
        wal.append(&[rec(2)]).unwrap();
        drop(wal);
        let (wal, recovered) = Wal::open(&path).unwrap();
        assert_eq!(recovered, vec![rec(0), rec(1), rec(2)]);
        assert!(!wal.is_empty());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_to_last_valid_frame() {
        let path = temp_wal("torn");
        let _ = std::fs::remove_file(&path);
        let (mut wal, _) = Wal::open(&path).unwrap();
        wal.append(&[rec(0)]).unwrap();
        let good_len = wal.len();
        wal.append(&[rec(1), rec(2)]).unwrap();
        drop(wal);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let (wal, recovered) = Wal::open(&path).unwrap();
        assert_eq!(recovered, vec![rec(0)]);
        assert_eq!(wal.len(), good_len);
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            good_len,
            "torn frame physically removed"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn reset_discards_frames_but_keeps_the_log_usable() {
        let path = temp_wal("reset");
        let _ = std::fs::remove_file(&path);
        let (mut wal, _) = Wal::open(&path).unwrap();
        wal.append(&[rec(0)]).unwrap();
        wal.reset().unwrap();
        assert!(wal.is_empty());
        wal.append(&[rec(9)]).unwrap();
        drop(wal);
        let (_, recovered) = Wal::open(&path).unwrap();
        assert_eq!(recovered, vec![rec(9)]);
        std::fs::remove_file(&path).unwrap();
    }
}
