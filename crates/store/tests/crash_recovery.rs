//! Kill-mid-append crash safety: the WAL tail is truncated at *every*
//! byte offset and recovery must always come back with exactly the
//! records whose frames were fully synced before the cut — no torn
//! reads, no survivors lost, no phantoms.

use std::path::PathBuf;

use sclog_obs::Recorder;
use sclog_store::wal::{replay, Wal};
use sclog_store::{ScanFilter, SegmentStore, StoreConfig, StoreMetrics, StoredAlert};
use sclog_testkit::{check_n, Gen};
use sclog_types::{AlertType, Severity, SystemId, Timestamp};

fn temp_path(tag: &str, case: u64) -> PathBuf {
    std::env::temp_dir().join(format!(
        "sclog-store-crash-{tag}-{}-{case}",
        std::process::id()
    ))
}

fn random_record(g: &mut Gen, seq: u64) -> StoredAlert {
    StoredAlert {
        time: Timestamp::from_micros(g.int_in(0..=2 * 86_400_000_000)),
        host: sclog_types::NodeId::from_index(g.below(4) as u32),
        category: sclog_types::CategoryId::from_index(g.below(2) as u16),
        severity: Severity::None,
        message_index: g.below(1 << 20) as usize,
        filtered: g.chance(0.5),
        seq,
    }
}

/// Truncating the WAL at every byte offset recovers exactly the
/// records of fully-written frames — never a partial frame, never a
/// corrupted record.
#[test]
fn recovery_at_every_truncation_offset() {
    let case = std::cell::Cell::new(0u64);
    check_n("wal_truncate_everywhere", 12, |g| {
        case.set(case.get() + 1);
        let path = temp_path("wal", case.get());
        let _ = std::fs::remove_file(&path);
        let (mut wal, recovered) = Wal::open(&path).unwrap();
        assert!(recovered.is_empty());

        // A few appends of random batches; record the frame
        // boundaries (file length after each synced append) and the
        // cumulative record count at each boundary.
        let mut boundaries = vec![(wal.len(), 0usize)];
        let mut all: Vec<StoredAlert> = Vec::new();
        let batches = g.usize_in(1..=4);
        for _ in 0..batches {
            let n = g.usize_in(1..=5);
            let batch: Vec<StoredAlert> = (0..n)
                .map(|i| random_record(g, all.len() as u64 + i as u64))
                .collect();
            wal.append(&batch).unwrap();
            all.extend_from_slice(&batch);
            boundaries.push((wal.len(), all.len()));
        }
        drop(wal);
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(bytes.len() as u64, boundaries.last().unwrap().0);

        for cut in 0..=bytes.len() {
            // Survivors = records of the last frame fully inside the cut.
            let expect = boundaries
                .iter()
                .rev()
                .find(|&&(len, _)| len <= cut as u64)
                .map_or(0, |&(_, count)| count);
            let cut_path = temp_path("walcut", case.get());
            std::fs::write(&cut_path, &bytes[..cut]).unwrap();
            let (_, recovered) = Wal::open(&cut_path).unwrap();
            assert_eq!(
                recovered.len(),
                expect,
                "cut at byte {cut}: wrong survivor count"
            );
            assert_eq!(recovered, all[..expect], "cut at byte {cut}: torn read");
            // The in-memory replay helper agrees with file recovery.
            if cut >= 10 && bytes[..8] == *b"SCLGWAL\0" {
                assert_eq!(replay(&bytes[..cut]).unwrap(), recovered);
            }
            std::fs::remove_file(&cut_path).unwrap();
        }
        std::fs::remove_file(&path).unwrap();
    });
}

/// The same property through the full store: append, crash (truncate
/// the partition WAL), reopen, and the store serves exactly the
/// surviving records — and a recovered store keeps accepting appends
/// with fresh sequences.
#[test]
fn store_survives_wal_truncation() {
    let case = std::cell::Cell::new(0u64);
    check_n("store_truncate_recover", 6, |g| {
        case.set(case.get() + 1);
        let root = temp_path("root", case.get());
        let _ = std::fs::remove_dir_all(&root);
        let rec = Recorder::disabled().thread("crash");
        let metrics = StoreMetrics::disabled();
        let mut store = SegmentStore::open(
            &root,
            StoreConfig {
                seal_records: 1 << 20, // never auto-seal: everything in the WAL
                cache_payloads: false,
            },
        )
        .unwrap();
        let category = store.register_category("CRASH_CAT", SystemId::Liberty, AlertType::Software);
        let host = store.intern_host("node-a");
        let day = Timestamp::from_ymd_hms(2005, 3, 7, 0, 0, 0);
        let n = g.usize_in(1..=12);
        let records: Vec<StoredAlert> = (0..n)
            .map(|i| StoredAlert {
                time: Timestamp::from_micros(day.as_micros() + i as i64 * 1_000_000),
                host,
                category,
                severity: Severity::None,
                message_index: i,
                filtered: true,
                seq: 0,
            })
            .collect();
        for r in &records {
            store
                .append(std::slice::from_ref(r), &rec, &metrics)
                .unwrap();
        }
        drop(store);

        let wal_path = root.join("liberty").join("2005-03-07").join("wal.bin");
        let bytes = std::fs::read(&wal_path).unwrap();
        let cut = g.usize_in(0..=bytes.len());
        std::fs::write(&wal_path, &bytes[..cut]).unwrap();

        let mut store = SegmentStore::open(
            &root,
            StoreConfig {
                seal_records: 1 << 20,
                cache_payloads: false,
            },
        )
        .unwrap();
        let (got, _) = store
            .scan(&ScanFilter::all(), true, &rec, &metrics)
            .unwrap();
        assert!(got.len() <= records.len(), "phantom records after crash");
        // Frames are whole records here, so survivors are a prefix.
        for (got, want) in got.iter().zip(&records) {
            assert_eq!(got.time, want.time);
            assert_eq!(got.message_index, want.message_index);
        }
        // The store stays writable and sequences stay monotone.
        let survivors = got.len();
        store
            .append(
                &[StoredAlert {
                    time: day,
                    host,
                    category,
                    severity: Severity::None,
                    message_index: 999,
                    filtered: false,
                    seq: 0,
                }],
                &rec,
                &metrics,
            )
            .unwrap();
        let (after, _) = store
            .scan(&ScanFilter::all(), true, &rec, &metrics)
            .unwrap();
        assert_eq!(after.len(), survivors + 1);
        let max_seq = after.iter().map(|r| r.seq).max().unwrap();
        assert_eq!(
            after.iter().filter(|r| r.seq == max_seq).count(),
            1,
            "fresh append must get a unique sequence"
        );
        std::fs::remove_dir_all(&root).unwrap();
    });
}
