//! Pruned-scan ≡ full-scan equivalence: zone-map pruning may only
//! skip work, never change answers. Random stores (multiple systems,
//! days, hosts, categories, severities) are scanned with random
//! filters both ways and the results must be byte-identical.

use std::path::PathBuf;

use sclog_obs::Recorder;
use sclog_store::{ScanFilter, SegmentStore, StoreConfig, StoreMetrics, StoredAlert};
use sclog_testkit::{check_n, Gen};
use sclog_types::{AlertType, BglSeverity, Severity, SyslogSeverity, Timestamp, ALL_SYSTEMS};

const DAY_MICROS: i64 = 86_400_000_000;

fn random_severity(g: &mut Gen) -> Severity {
    match g.below(3) {
        0 => Severity::None,
        1 => Severity::Syslog(*g.pick(&[
            SyslogSeverity::Error,
            SyslogSeverity::Warning,
            SyslogSeverity::Info,
        ])),
        _ => Severity::Bgl(*g.pick(&[BglSeverity::Fatal, BglSeverity::Error, BglSeverity::Info])),
    }
}

fn random_filter(g: &mut Gen, store: &SegmentStore) -> ScanFilter {
    let mut filter = ScanFilter::all();
    if g.chance(0.5) {
        filter.from = Some(Timestamp::from_micros(g.int_in(0..=4 * DAY_MICROS)));
    }
    if g.chance(0.5) {
        filter.to = Some(Timestamp::from_micros(g.int_in(0..=4 * DAY_MICROS)));
    }
    if g.chance(0.3) {
        filter.system = Some(*g.pick(&ALL_SYSTEMS));
    }
    if g.chance(0.3) {
        // A random subset of known category indexes as a bitset
        // (possibly empty — matches nothing, prunes everything).
        let words = store.catalog().categories.len() / 64 + 1;
        let mut bits = vec![0u64; words];
        for i in 0..store.catalog().categories.len() {
            if g.chance(0.4) {
                bits[i / 64] |= 1 << (i % 64);
            }
        }
        filter.categories = Some(bits);
    }
    if g.chance(0.3) {
        let mut hosts: Vec<u32> = (0..store.catalog().hosts.len() as u32)
            .filter(|_| g.chance(0.4))
            .collect();
        hosts.sort_unstable();
        filter.hosts = Some(hosts);
    }
    if g.chance(0.3) {
        filter.severities = Some(g.below(1 << 15) as u16);
    }
    if g.chance(0.3) {
        filter.classes = Some(g.below(8) as u8);
    }
    if g.chance(0.3) {
        filter.filtered = Some(g.chance(0.5));
    }
    filter
}

#[test]
fn pruned_scan_is_result_identical_to_full_scan() {
    let case = std::cell::Cell::new(0u64);
    check_n("prune_equivalence", 10, |g| {
        case.set(case.get() + 1);
        let root: PathBuf = std::env::temp_dir().join(format!(
            "sclog-store-prune-{}-{}",
            std::process::id(),
            case.get()
        ));
        let _ = std::fs::remove_dir_all(&root);
        let rec = Recorder::disabled().thread("prune");
        let metrics = StoreMetrics::disabled();
        let mut store = SegmentStore::open(
            &root,
            StoreConfig {
                // Tiny segments: many zone maps per partition, plus a
                // live tail in most partitions.
                seal_records: g.usize_in(2..=6),
                cache_payloads: g.chance(0.5),
            },
        )
        .unwrap();

        let mut categories = Vec::new();
        for i in 0..g.usize_in(2..=6) {
            let system = *g.pick(&ALL_SYSTEMS);
            let class = *g.pick(&[
                AlertType::Hardware,
                AlertType::Software,
                AlertType::Indeterminate,
            ]);
            categories.push(store.register_category(&format!("CAT_{i}"), system, class));
        }
        let hosts: Vec<_> = (0..g.usize_in(1..=5))
            .map(|i| store.intern_host(&format!("node-{i}")))
            .collect();

        let n = g.usize_in(5..=60);
        let records: Vec<StoredAlert> = (0..n)
            .map(|i| StoredAlert {
                time: Timestamp::from_micros(g.int_in(0..=3 * DAY_MICROS)),
                host: *g.pick(&hosts),
                category: *g.pick(&categories),
                severity: random_severity(g),
                message_index: i,
                filtered: g.chance(0.5),
                seq: 0,
            })
            .collect();
        store.append(&records, &rec, &metrics).unwrap();
        if g.chance(0.5) {
            store.seal_all(&rec, &metrics).unwrap();
        }
        if g.chance(0.3) {
            store.compact(&rec, &metrics).unwrap();
        }

        for _ in 0..8 {
            let filter = random_filter(g, &store);
            let (pruned, pstats) = store.scan(&filter, true, &rec, &metrics).unwrap();
            let (full, fstats) = store.scan(&filter, false, &rec, &metrics).unwrap();
            assert_eq!(pruned, full, "filter {filter:?}");
            // ScanStats consistency: an unpruned scan visits every
            // partition and zone; pruning may only move them to the
            // pruned side and may never decode *more* rows. Bytes are
            // cache-dependent, so they carry no invariant here.
            assert_eq!(fstats.zones_pruned, 0, "filter {filter:?}");
            assert_eq!(fstats.partitions_pruned, 0, "filter {filter:?}");
            assert_eq!(
                pstats.zones_pruned + pstats.zones_scanned,
                fstats.zones_scanned,
                "filter {filter:?}"
            );
            assert_eq!(
                pstats.partitions_pruned + pstats.partitions_scanned,
                fstats.partitions_scanned,
                "filter {filter:?}"
            );
            assert!(
                pstats.rows_decoded <= fstats.rows_decoded,
                "filter {filter:?}: pruned scan decoded more rows"
            );
        }

        // Reopening the store changes no answer either.
        drop(store);
        let store = SegmentStore::open(&root, StoreConfig::default()).unwrap();
        let (all, _) = store
            .scan(&ScanFilter::all(), true, &rec, &metrics)
            .unwrap();
        assert_eq!(all.len(), n);
        std::fs::remove_dir_all(&root).unwrap();
    });
}
