//! Property tests pinning the audit's product-automaton verdicts
//! against brute-force oracles over generated inputs.
//!
//! Two oracle styles:
//!
//! * **Exact** — for literal patterns, inclusion and region overlap
//!   have closed-form answers (substring containment, alignment
//!   agreement), so the automaton verdicts must match exactly.
//! * **Sampled** — for generated regexes, a `Yes` inclusion verdict is
//!   falsified by any sampled message body that matches the sub but
//!   not the sup, and every `No` witness must actually separate the
//!   languages.

use sclog_audit::{audit_rules, inclusion, region_overlap, rep_alphabet, Budget, Nfa, DEFAULT_CAP};
use sclog_rules::{Predicate, Regex};
use sclog_testkit::{check, Gen};

fn nfa(pat: &str) -> Nfa {
    Nfa::new(&Regex::new(pat).unwrap())
}

/// Exact oracle: `L_sub(a) ⊆ L_sub(b)` for literals iff `a` contains
/// `b` (every superstring of `a` then contains `b`; conversely `a`
/// itself is in `L(a)`).
#[test]
fn prop_literal_inclusion_matches_substring_oracle() {
    let letters = ['a', 'b', 'c'];
    check(
        "literal inclusion == substring containment",
        |g: &mut Gen| {
            let word = |g: &mut Gen| -> String {
                (0..g.usize_in(1..=5)).map(|_| *g.pick(&letters)).collect()
            };
            let a = word(g);
            let b = word(g);
            let (na, nb) = (nfa(&a), nfa(&b));
            let alpha = rep_alphabet(&[&na, &nb]);
            match inclusion(&na, &nb, &alpha, DEFAULT_CAP) {
                Budget::Done(None) => {
                    assert!(a.contains(&b), "claimed {a:?} ⊆ {b:?}");
                }
                Budget::Done(Some(w)) => {
                    assert!(!a.contains(&b), "spurious counterexample for {a:?} ⊆ {b:?}");
                    assert!(w.contains(&a) && !w.contains(&b), "bad witness {w:?}");
                }
                Budget::Overflow => panic!("budget overflow on literals {a:?}/{b:?}"),
            }
        },
    );
}

/// Exact oracle: two literal matches can occupy overlapping character
/// ranges of one line iff some alignment with a non-empty intersection
/// agrees on every shared position.
#[test]
fn prop_literal_overlap_matches_alignment_oracle() {
    let letters = ['a', 'b'];
    check(
        "literal region overlap == alignment agreement",
        |g: &mut Gen| {
            let word = |g: &mut Gen| -> String {
                (0..g.usize_in(1..=4)).map(|_| *g.pick(&letters)).collect()
            };
            let a = word(g);
            let b = word(g);
            let av: Vec<char> = a.chars().collect();
            let bv: Vec<char> = b.chars().collect();
            // Slide b across a; any placement sharing >= 1 agreeing
            // position (and agreeing everywhere they intersect) overlaps.
            let mut expect = false;
            for shift in -(bv.len() as isize - 1)..=(av.len() as isize - 1) {
                let agree = (0..bv.len() as isize).all(|i| {
                    let j = shift + i;
                    !(0..av.len() as isize).contains(&j) || av[j as usize] == bv[i as usize]
                });
                if agree {
                    expect = true;
                    break;
                }
            }
            let (na, nb) = (nfa(&a), nfa(&b));
            let alpha = rep_alphabet(&[&na, &nb]);
            let found = [
                region_overlap(&na, &nb, &alpha, DEFAULT_CAP),
                region_overlap(&nb, &na, &alpha, DEFAULT_CAP),
            ]
            .into_iter()
            .find_map(|r| match r {
                Budget::Done(w) => w,
                Budget::Overflow => panic!("budget overflow on literals {a:?}/{b:?}"),
            });
            assert_eq!(
                found.is_some(),
                expect,
                "overlap({a:?}, {b:?}) disagreement (witness {found:?})"
            );
            if let Some(w) = found {
                assert!(w.contains(&a) && w.contains(&b), "bad witness {w:?}");
            }
        },
    );
}

/// A random small regex over {a, b, c}: literals, classes, dot,
/// alternation, optional/star repeats, and occasional anchors.
fn gen_regex(g: &mut Gen, depth: usize) -> String {
    let atom = |g: &mut Gen| -> String {
        match g.below(4) {
            0 => g.pick(&["a", "b", "c"]).to_string(),
            1 => ".".to_string(),
            2 => g.pick(&["[ab]", "[^a]", "[b-c]"]).to_string(),
            _ => g.pick(&["ab", "bc", "ca"]).to_string(),
        }
    };
    if depth == 0 {
        return atom(g);
    }
    match g.below(5) {
        0 => format!("{}{}", gen_regex(g, depth - 1), gen_regex(g, depth - 1)),
        1 => format!("({}|{})", gen_regex(g, depth - 1), gen_regex(g, depth - 1)),
        2 => format!("({})?", gen_regex(g, depth - 1)),
        3 => format!("({})*", atom(g)),
        _ => atom(g),
    }
}

/// Sampled oracle: an inclusion verdict of "included" must hold on
/// every sampled body, and a counterexample witness must separate the
/// two languages under the real matcher.
#[test]
fn prop_regex_inclusion_consistent_with_sampling() {
    check("regex inclusion vs sampled bodies", |g: &mut Gen| {
        let pa = gen_regex(g, 2);
        let pb = gen_regex(g, 2);
        let (Ok(ra), Ok(rb)) = (Regex::new(&pa), Regex::new(&pb)) else {
            return; // generator produced nothing unparseable today, but stay safe
        };
        let (na, nb) = (Nfa::new(&ra), Nfa::new(&rb));
        let alpha = rep_alphabet(&[&na, &nb]);
        match inclusion(&na, &nb, &alpha, DEFAULT_CAP) {
            Budget::Done(None) => {
                // No sampled body may match a but not b.
                for _ in 0..40 {
                    let body: String = (0..g.usize_in(0..=6))
                        .map(|_| *g.pick(&['a', 'b', 'c', ' ']))
                        .collect();
                    if ra.is_match(&body) {
                        assert!(
                            rb.is_match(&body),
                            "inclusion /{pa}/ ⊆ /{pb}/ falsified by {body:?}"
                        );
                    }
                }
            }
            Budget::Done(Some(w)) => {
                assert!(ra.is_match(&w), "witness {w:?} does not match /{pa}/");
                assert!(!rb.is_match(&w), "witness {w:?} matches /{pb}/");
            }
            Budget::Overflow => {} // verdict withheld: nothing to pin
        }
    });
}

/// Every overlap witness the product machine produces must be a line
/// both regexes genuinely match.
#[test]
fn prop_regex_overlap_witnesses_match_both() {
    check("regex overlap witnesses", |g: &mut Gen| {
        let pa = gen_regex(g, 2);
        let pb = gen_regex(g, 2);
        let (Ok(ra), Ok(rb)) = (Regex::new(&pa), Regex::new(&pb)) else {
            return;
        };
        let (na, nb) = (Nfa::new(&ra), Nfa::new(&rb));
        let alpha = rep_alphabet(&[&na, &nb]);
        if let Budget::Done(Some(w)) = region_overlap(&na, &nb, &alpha, DEFAULT_CAP) {
            assert!(ra.is_match(&w), "overlap witness {w:?} fails /{pa}/");
            assert!(rb.is_match(&w), "overlap witness {w:?} fails /{pb}/");
        }
    });
}

/// End-to-end pinning: audit a generated two-rule literal catalog and
/// compare the shadowing verdict against the substring oracle.
#[test]
fn prop_audit_shadow_verdict_matches_oracle() {
    let letters = ['a', 'b', 'c'];
    check("audit shadowing on literal catalogs", |g: &mut Gen| {
        let word =
            |g: &mut Gen| -> String { (0..g.usize_in(1..=5)).map(|_| *g.pick(&letters)).collect() };
        let first = word(g);
        let second = word(g);
        let rules = vec![
            ("FIRST".to_string(), format!("/{first}/")),
            ("SECOND".to_string(), format!("/{second}/")),
        ];
        let audit = audit_rules("prop", &rules);
        let shadowed = audit.findings.iter().find(|f| f.code == "shadowed");
        // SECOND is dead iff every line containing `second` contains
        // `first`, i.e. `second` contains `first` as a substring.
        assert_eq!(
            shadowed.is_some(),
            second.contains(&first),
            "rules /{first}/ then /{second}/"
        );
        if let Some(f) = shadowed {
            assert_eq!(f.rule, "SECOND");
            let w = f.witness.as_deref().expect("shadow finding lost witness");
            let p1 = Predicate::parse(&rules[0].1).unwrap();
            let p2 = Predicate::parse(&rules[1].1).unwrap();
            assert!(p1.matches(w) && p2.matches(w), "witness {w:?}");
        }
    });
}
