//! Command-line front end for the catalog audit.
//!
//! Modes:
//!
//! * no arguments — print the human-readable report; exit non-zero if
//!   any deny-level finding exists.
//! * `--json` — print the machine-readable report to stdout.
//! * `--write PATH` — write the JSON report to `PATH` (golden update).
//! * `--check PATH` — recompute the report and compare it against the
//!   committed golden snapshot at `PATH`; exit non-zero on divergence
//!   or on any deny-level finding. This is the tier-1 verify gate.

use sclog_audit::{audit_all, check_golden, has_deny, render_text};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let report = audit_all();
    let deny_exit = || {
        if has_deny(&report) {
            eprintln!("sclog-audit: deny-level findings present");
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        }
    };
    match args.first().map(String::as_str) {
        None => {
            print!("{}", render_text(&report));
            deny_exit()
        }
        Some("--json") => {
            println!("{}", report.to_json());
            deny_exit()
        }
        Some("--write") => {
            let Some(path) = args.get(1) else {
                eprintln!("usage: sclog-audit --write PATH");
                return ExitCode::FAILURE;
            };
            let mut body = report.to_json();
            body.push('\n');
            if let Err(e) = std::fs::write(path, body) {
                eprintln!("sclog-audit: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("sclog-audit: wrote {path}");
            deny_exit()
        }
        Some("--check") => {
            let Some(path) = args.get(1) else {
                eprintln!("usage: sclog-audit --check PATH");
                return ExitCode::FAILURE;
            };
            let golden = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("sclog-audit: cannot read golden {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if let Err(e) = check_golden(&report, &golden) {
                eprintln!("sclog-audit: {e}");
                return ExitCode::FAILURE;
            }
            let (deny, warn, allow) = report.counts();
            eprintln!(
                "sclog-audit: golden snapshot matches ({deny} deny, {warn} warn, {allow} allow)"
            );
            deny_exit()
        }
        Some(other) => {
            eprintln!("sclog-audit: unknown flag {other}");
            eprintln!("usage: sclog-audit [--json | --write PATH | --check PATH]");
            ExitCode::FAILURE
        }
    }
}
