//! Rendering of an [`AuditReport`] for humans, and the golden-file
//! comparison used by the `--check` verify gate.

use sclog_types::{AuditLevel, AuditReport};
use std::fmt::Write as _;

/// Renders the report as a human-readable text summary: one header
/// line, then per-system rule-health rollups and findings.
pub fn render_text(report: &AuditReport) -> String {
    let (deny, warn, allow) = report.counts();
    let nrules: usize = report.systems.iter().map(|s| s.rules.len()).sum();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "sclog-audit (schema v{}): {} rules across {} systems — {} deny, {} warn, {} allow",
        report.version,
        nrules,
        report.systems.len(),
        deny,
        warn,
        allow
    );
    for sys in &report.systems {
        let insts: usize = sys.rules.iter().map(|r| r.insts).sum();
        let max_threads = sys.rules.iter().map(|r| r.thread_bound).max().unwrap_or(0);
        let unfiltered = sys.rules.iter().filter(|r| r.always_check).count();
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "[{}] {} rules, {} NFA instructions, max {} threads/rule, {} in always-check set, {} finding{}",
            sys.system,
            sys.rules.len(),
            insts,
            max_threads,
            unfiltered,
            sys.findings.len(),
            if sys.findings.len() == 1 { "" } else { "s" }
        );
        for f in &sys.findings {
            match &f.other {
                Some(other) => {
                    let _ = writeln!(
                        out,
                        "  {} {} {} vs {}: {}",
                        f.level, f.code, f.rule, other, f.detail
                    );
                }
                None => {
                    let _ = writeln!(out, "  {} {} {}: {}", f.level, f.code, f.rule, f.detail);
                }
            }
            if let Some(w) = &f.witness {
                let _ = writeln!(out, "        witness: {w:?}");
            }
        }
    }
    out
}

/// Compares the report's JSON form against a committed golden file.
/// Returns `Ok(())` on an exact match (modulo a trailing newline) and
/// a human-readable explanation otherwise.
pub fn check_golden(report: &AuditReport, golden: &str) -> Result<(), String> {
    let fresh = report.to_json();
    if fresh.trim_end() == golden.trim_end() {
        return Ok(());
    }
    // Point at the first divergence so drift is easy to locate.
    let a = fresh.trim_end().as_bytes();
    let b = golden.trim_end().as_bytes();
    let at = a
        .iter()
        .zip(b.iter())
        .position(|(x, y)| x != y)
        .unwrap_or(a.len().min(b.len()));
    let ctx = |s: &[u8]| {
        let lo = at.saturating_sub(40);
        let hi = (at + 40).min(s.len());
        String::from_utf8_lossy(&s[lo..hi]).into_owned()
    };
    Err(format!(
        "audit report diverges from golden snapshot at byte {at}\n  fresh:  …{}…\n  golden: …{}…\n\
         regenerate with: cargo run -p sclog-audit -- --write AUDIT.json",
        ctx(a),
        ctx(b)
    ))
}

/// True when the report contains at least one deny-level finding.
pub fn has_deny(report: &AuditReport) -> bool {
    report
        .systems
        .iter()
        .flat_map(|s| &s.findings)
        .any(|f| f.level == AuditLevel::Deny)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sclog_types::{AuditFinding, RuleHealth, SystemAudit};

    fn sample() -> AuditReport {
        AuditReport {
            version: 1,
            systems: vec![SystemAudit {
                system: "bgl".into(),
                rules: vec![RuleHealth {
                    rule: "KERNDTLB".into(),
                    insts: 12,
                    thread_bound: 5,
                    factors: 1,
                    weakest_factor_len: 4,
                    always_check: false,
                }],
                findings: vec![AuditFinding {
                    level: AuditLevel::Warn,
                    code: "always-check".into(),
                    rule: "KERNDTLB".into(),
                    other: None,
                    detail: "demo".into(),
                    witness: None,
                }],
            }],
        }
    }

    #[test]
    fn text_mentions_counts_and_findings() {
        let text = render_text(&sample());
        assert!(text.contains("0 deny, 1 warn, 0 allow"), "{text}");
        assert!(text.contains("warn always-check KERNDTLB"), "{text}");
    }

    #[test]
    fn golden_roundtrip_and_divergence() {
        let report = sample();
        let json = report.to_json();
        assert!(check_golden(&report, &json).is_ok());
        assert!(check_golden(&report, &format!("{json}\n")).is_ok());
        let err = check_golden(&report, &json.replace("KERNDTLB", "KERNXXXX")).unwrap_err();
        assert!(err.contains("diverges"), "{err}");
    }

    #[test]
    fn deny_detection() {
        let mut report = sample();
        assert!(!has_deny(&report));
        report.systems[0].findings[0].level = AuditLevel::Deny;
        assert!(has_deny(&report));
    }
}
