//! The audit passes: per-rule checks and pairwise catalog analyses.
//!
//! Input is a list of named rules in catalog (priority) order; output
//! is a [`SystemAudit`] holding per-rule health metrics and findings.
//! The passes:
//!
//! 1. **Vacuity / contradiction** — empty-language leaf regexes,
//!    field constraints no whitespace-free token can satisfy, negated
//!    universal patterns, `p && !p` conjunctions, and rules that can
//!    never match at all.
//! 2. **NFA health** — epsilon cycles, redundant leading `.*`, thread
//!    bounds, instruction counts.
//! 3. **Prefilter coverage** — rules with no required literal factor
//!    sit in the always-check set and scan every line.
//! 4. **Shadowing** — a later rule whose language is contained in an
//!    earlier rule's can never fire (first match wins): a dead
//!    category, reported at deny with a witness line.
//! 5. **Overlap** — two live rules whose match regions can share
//!    characters on one line; the winner is decided purely by catalog
//!    order, so the pair is reported (at allow) with the witness line.
//!
//! Verdict discipline: deny findings must be *certain*. Pairwise
//! verdicts that the compositional lifting cannot decide are dropped,
//! and every emitted witness is re-validated against the compiled
//! predicates before a finding is produced.

use crate::nfa::{
    inclusion, matches_empty, region_overlap, rep_alphabet, shortest_member, Budget, Nfa,
    DEFAULT_CAP,
};
use sclog_rules::{catalog, Predicate, RuleExpr};
use sclog_types::{AuditFinding, AuditLevel, AuditReport, RuleHealth, SystemAudit};
use sclog_types::{SystemId, ALL_SYSTEMS};

/// Schema version stamped into [`AuditReport`].
pub const SCHEMA_VERSION: u32 = 1;

/// Analysis view of a compiled predicate: leaves carry their NFA
/// programs, ready for the product searches.
enum View {
    /// A regex applied to the whole line (`/re/` or `$0 ~ /re/`).
    Re(Nfa),
    /// A regex applied to whitespace-split field `n >= 1`.
    Field(usize, Nfa),
    Not(Box<View>),
    And(Box<View>, Box<View>),
    Or(Box<View>, Box<View>),
}

fn view(p: &Predicate) -> View {
    match p {
        Predicate::Line(re) | Predicate::Field(0, re) => View::Re(Nfa::new(re)),
        Predicate::Field(n, re) => View::Field(*n, Nfa::new(re)),
        Predicate::Not(q) => View::Not(Box::new(view(q))),
        Predicate::And(a, b) => View::And(Box::new(view(a)), Box::new(view(b))),
        Predicate::Or(a, b) => View::Or(Box::new(view(a)), Box::new(view(b))),
    }
}

/// Three-valued inclusion verdict. `No` carries a candidate witness
/// line (validated by the caller before use).
enum Verdict {
    Yes,
    No(String),
    Unknown,
}

/// Whitespace-free projection of an alphabet, for field-level
/// questions: an awk field never contains whitespace.
fn ws_free(alphabet: &[char]) -> Vec<char> {
    alphabet
        .iter()
        .copied()
        .filter(|c| !c.is_whitespace())
        .collect()
}

/// A line whose `n`-th whitespace-split field is `tok` (`tok` must be
/// whitespace-free and non-empty).
fn line_with_field(n: usize, tok: &str) -> String {
    let mut line = String::new();
    for _ in 1..n {
        line.push_str("x ");
    }
    line.push_str(tok);
    line
}

/// Compositional language inclusion `L(sub) ⊆ L(sup)` at the predicate
/// level. Sound by construction: `Yes` only through exact or
/// conservative rules, `No` only with a witness the caller validates.
fn included(sub: &View, sup: &View) -> Verdict {
    match (sub, sup) {
        (View::Re(a), View::Re(b)) => {
            let alpha = rep_alphabet(&[a, b]);
            match inclusion(a, b, &alpha, DEFAULT_CAP) {
                Budget::Done(None) => Verdict::Yes,
                Budget::Done(Some(w)) => Verdict::No(w),
                Budget::Overflow => Verdict::Unknown,
            }
        }
        (View::Field(n, a), View::Field(m, b)) if n == m => {
            // Quantify over fields = non-empty whitespace-free strings:
            // run the inclusion over the whitespace-free alphabet.
            let alpha = ws_free(&rep_alphabet(&[a, b]));
            match inclusion(a, b, &alpha, DEFAULT_CAP) {
                Budget::Done(None) => Verdict::Yes,
                Budget::Done(Some(w)) if !w.is_empty() => Verdict::No(line_with_field(*n, &w)),
                // An empty-string counterexample is no field; the
                // restricted search cannot rule out non-empty ones
                // beyond it, so stay undecided.
                Budget::Done(Some(_)) | Budget::Overflow => Verdict::Unknown,
            }
        }
        (View::Field(n, a), View::Re(b)) if !b.has_anchors() => {
            // A field is a contiguous substring of its line, and
            // anchor-free substring languages are superstring-closed,
            // so field-level inclusion lifts to the line.
            let alpha = rep_alphabet(&[a, b]);
            match inclusion(a, b, &alpha, DEFAULT_CAP) {
                Budget::Done(None) => Verdict::Yes,
                Budget::Done(Some(w)) if !w.is_empty() && !w.chars().any(char::is_whitespace) => {
                    // Candidate only: the filler fields could satisfy
                    // `b`; the caller's validation decides.
                    Verdict::No(line_with_field(*n, &w))
                }
                _ => Verdict::Unknown,
            }
        }
        (View::Not(p), View::Not(q)) => match included(q, p) {
            // Complement is antitone; a witness for q ⊄ p (matches q,
            // not p) matches !p and not !q, so it transfers.
            Verdict::Yes => Verdict::Yes,
            Verdict::No(w) => Verdict::No(w),
            Verdict::Unknown => Verdict::Unknown,
        },
        (View::Or(p, q), _) => match (included(p, sup), included(q, sup)) {
            (Verdict::Yes, Verdict::Yes) => Verdict::Yes,
            (Verdict::No(w), _) | (_, Verdict::No(w)) => Verdict::No(w),
            _ => Verdict::Unknown,
        },
        (_, View::And(p, q)) => match (included(sub, p), included(sub, q)) {
            (Verdict::Yes, Verdict::Yes) => Verdict::Yes,
            (Verdict::No(w), _) | (_, Verdict::No(w)) => Verdict::No(w),
            _ => Verdict::Unknown,
        },
        (View::And(p, q), _) => {
            // Conjunction shrinks the language: either conjunct being
            // included suffices. Nothing certain otherwise.
            if matches!(included(p, sup), Verdict::Yes) || matches!(included(q, sup), Verdict::Yes)
            {
                Verdict::Yes
            } else {
                Verdict::Unknown
            }
        }
        (_, View::Or(p, q)) => {
            if matches!(included(sub, p), Verdict::Yes) || matches!(included(sub, q), Verdict::Yes)
            {
                Verdict::Yes
            } else {
                Verdict::Unknown
            }
        }
        _ => Verdict::Unknown,
    }
}

/// A line the predicate matches, when one can be constructed.
fn member(v: &View) -> Option<String> {
    match v {
        View::Re(n) => {
            let alpha = rep_alphabet(&[n]);
            match shortest_member(n, &alpha, DEFAULT_CAP) {
                Budget::Done(w) => w,
                Budget::Overflow => None,
            }
        }
        View::Field(n, a) => {
            let alpha = ws_free(&rep_alphabet(&[a]));
            match shortest_member(a, &alpha, DEFAULT_CAP) {
                Budget::Done(Some(w)) if !w.is_empty() => Some(line_with_field(*n, &w)),
                _ => None,
            }
        }
        View::Or(p, q) => member(p).or_else(|| member(q)),
        // No cheap constructive member for conjunctions or negations.
        View::And(..) | View::Not(_) => None,
    }
}

/// Conservative "this predicate matches every line".
fn always(v: &View) -> bool {
    match v {
        View::Re(n) => !n.has_anchors() && matches_empty(n),
        View::Field(..) => false, // needs field n to exist
        View::Not(p) => never(p),
        View::And(a, b) => always(a) && always(b),
        View::Or(a, b) => always(a) || always(b),
    }
}

/// Conservative "this predicate matches no line at all".
fn never(v: &View) -> bool {
    let leaf_dead = |n: &Nfa, alpha: &[char]| {
        matches!(shortest_member(n, alpha, DEFAULT_CAP), Budget::Done(None))
    };
    match v {
        View::Re(n) => leaf_dead(n, &rep_alphabet(&[n])),
        View::Field(_, a) => {
            let alpha = ws_free(&rep_alphabet(&[a]));
            // Dead if no non-empty whitespace-free token matches.
            match shortest_member(a, &alpha, DEFAULT_CAP) {
                Budget::Done(None) => true,
                Budget::Done(Some(w)) => {
                    w.is_empty() && {
                        // Only the empty string matches; no field is empty.
                        // Check nothing longer matches by re-running on a
                        // one-char floor: handled by the BFS having found
                        // "" as *shortest*; a longer member may still
                        // exist, so probe explicitly.
                        !member_nonempty(a, &alpha)
                    }
                }
                Budget::Overflow => false,
            }
        }
        View::Not(p) => always(p),
        View::And(a, b) => never(a) || never(b),
        View::Or(a, b) => never(a) && never(b),
    }
}

/// Does `a` match any non-empty string over `alpha`? (Used when the
/// shortest member is the empty string, which is no valid field.)
fn member_nonempty(a: &Nfa, alpha: &[char]) -> bool {
    // A pattern matching "" under substring search matches every
    // string over any alphabet (the empty match embeds anywhere), so a
    // non-empty member exists iff the alphabet is non-empty.
    let _ = a;
    !alpha.is_empty()
}

/// Per-rule pass: health metrics plus leaf/structural findings.
fn rule_pass(
    name: &str,
    expr: &RuleExpr,
    pred: &Predicate,
    findings: &mut Vec<AuditFinding>,
) -> RuleHealth {
    let mut insts = 0;
    let mut threads = 0;
    // Walk the predicate leaves with negation depth.
    fn walk(
        v: &View,
        neg: bool,
        name: &str,
        insts: &mut usize,
        threads: &mut usize,
        findings: &mut Vec<AuditFinding>,
    ) {
        let mut finding = |level, code: &str, detail: String| {
            findings.push(AuditFinding {
                level,
                code: code.into(),
                rule: name.to_string(),
                other: None,
                detail,
                witness: None,
            });
        };
        match v {
            View::Re(n) | View::Field(_, n) => {
                *insts += n.insts();
                *threads += n.thread_bound();
                let alpha = rep_alphabet(&[n]);
                if matches!(shortest_member(n, &alpha, DEFAULT_CAP), Budget::Done(None)) {
                    finding(
                        AuditLevel::Deny,
                        "empty-language",
                        "leaf regex matches no string at all".into(),
                    );
                } else if !n.has_anchors() && matches_empty(n) {
                    if neg {
                        finding(
                            AuditLevel::Warn,
                            "negated-universal",
                            "negation of a universal pattern never matches".into(),
                        );
                    } else {
                        finding(
                            AuditLevel::Warn,
                            "universal-pattern",
                            "leaf regex matches every line".into(),
                        );
                    }
                }
                if let View::Field(fno, a) = v {
                    let ws_alpha = ws_free(&rep_alphabet(&[a]));
                    let dead = match shortest_member(a, &ws_alpha, DEFAULT_CAP) {
                        Budget::Done(None) => true,
                        Budget::Done(Some(w)) => w.is_empty() && ws_alpha.is_empty(),
                        Budget::Overflow => false,
                    };
                    if dead {
                        finding(
                            AuditLevel::Deny,
                            "vacuous-field",
                            format!("no whitespace-free token can satisfy the ${fno} constraint"),
                        );
                    }
                }
                if n.has_epsilon_cycle() {
                    finding(
                        AuditLevel::Warn,
                        "epsilon-cycle",
                        "compiled NFA has an epsilon cycle (nested empty repeat)".into(),
                    );
                }
                if n.leading_dot_loop() {
                    finding(
                        AuditLevel::Warn,
                        "leading-dot-star",
                        "redundant `.*` prefix under unanchored search widens the thread set"
                            .into(),
                    );
                }
            }
            View::Not(p) => walk(p, !neg, name, insts, threads, findings),
            View::And(a, b) | View::Or(a, b) => {
                walk(a, neg, name, insts, threads, findings);
                walk(b, neg, name, insts, threads, findings);
            }
        }
    }
    let v = view(pred);
    walk(&v, false, name, &mut insts, &mut threads, findings);

    // Structural contradiction: a conjunction containing both `p` and
    // `!p` (after flattening `&&` chains) can never match.
    let mut conjuncts = Vec::new();
    flatten_and(expr, &mut conjuncts);
    let mut contradicts = false;
    for (i, x) in conjuncts.iter().enumerate() {
        for y in &conjuncts[i + 1..] {
            let contra = matches!(y, RuleExpr::Not(inner) if inner.as_ref() == *x)
                || matches!(x, RuleExpr::Not(inner) if inner.as_ref() == *y);
            if contra {
                contradicts = true;
                findings.push(AuditFinding {
                    level: AuditLevel::Deny,
                    code: "contradiction".into(),
                    rule: name.to_string(),
                    other: None,
                    detail: "conjunction contains a predicate and its own negation".into(),
                    witness: None,
                });
            }
        }
    }

    // A structural contradiction implies vacuity even when the
    // language-level `never` (which treats conjuncts independently)
    // cannot see it.
    if contradicts || never(&v) {
        findings.push(AuditFinding {
            level: AuditLevel::Deny,
            code: "vacuous-rule".into(),
            rule: name.to_string(),
            other: None,
            detail: "the rule as a whole can never match any line".into(),
            witness: None,
        });
    }

    let factors = pred.required_literals();
    let (nfactors, weakest) = match &factors {
        Some(f) => (f.len(), f.iter().map(String::len).min().unwrap_or(0)),
        None => (0, 0),
    };
    if factors.is_none() {
        findings.push(AuditFinding {
            level: AuditLevel::Warn,
            code: "always-check".into(),
            rule: name.to_string(),
            other: None,
            detail: format!(
                "no required literal factor: the prescan cannot gate this rule, \
                 so its NFA (≤{threads} threads) runs on every line"
            ),
            witness: None,
        });
    }
    RuleHealth {
        rule: name.to_string(),
        insts,
        thread_bound: threads,
        factors: nfactors,
        weakest_factor_len: weakest,
        always_check: factors.is_none(),
    }
}

fn flatten_and<'e>(expr: &'e RuleExpr, out: &mut Vec<&'e RuleExpr>) {
    match expr {
        RuleExpr::And(a, b) => {
            flatten_and(a, out);
            flatten_and(b, out);
        }
        other => out.push(other),
    }
}

/// The line-level NFA projection used for overlap: exact for plain
/// line rules, a necessary-condition approximation for conjunctions
/// (witnesses are re-validated against the full predicates).
fn line_nfa(v: &View) -> Option<&Nfa> {
    match v {
        View::Re(n) => Some(n),
        View::And(a, b) => line_nfa(a).or_else(|| line_nfa(b)),
        _ => None,
    }
}

/// Audits one named rule list (catalog order). `system` is only a
/// label in the report.
///
/// # Panics
///
/// Panics if a rule fails to parse or compile — the audit is a build
/// gate, and an uncompilable catalog is a build error.
pub fn audit_rules(system: &str, rules: &[(String, String)]) -> SystemAudit {
    let compiled: Vec<(String, RuleExpr, Predicate, View)> = rules
        .iter()
        .map(|(name, src)| {
            let expr =
                RuleExpr::parse(src).unwrap_or_else(|e| panic!("rule {name} does not parse: {e}"));
            let pred = Predicate::compile(&expr)
                .unwrap_or_else(|e| panic!("rule {name} does not compile: {e}"));
            let v = view(&pred);
            (name.clone(), expr, pred, v)
        })
        .collect();

    let mut findings = Vec::new();
    let mut health = Vec::new();
    for (name, expr, pred, _) in &compiled {
        health.push(rule_pass(name, expr, pred, &mut findings));
    }

    // Pairwise passes, in catalog order: i is the earlier (winning)
    // rule, j the later one.
    for i in 0..compiled.len() {
        for j in (i + 1)..compiled.len() {
            let (name_i, _, pred_i, view_i) = &compiled[i];
            let (name_j, _, pred_j, view_j) = &compiled[j];
            // Shadowing: L(j) ⊆ L(i) makes j dead.
            let shadowed = match included(view_j, view_i) {
                Verdict::Yes => {
                    // A rule with an empty language is vacuously
                    // included in everything; that is already reported
                    // as its own finding, not as shadowing.
                    member(view_j).filter(|w| pred_j.matches(w) && pred_i.matches(w))
                }
                Verdict::No(w) => {
                    // Validated non-inclusion: nothing to report, but
                    // keep the invariant that the witness is real.
                    debug_assert!(
                        pred_j.matches(&w) && !pred_i.matches(&w),
                        "bogus inclusion counterexample for {name_j} vs {name_i}: {w:?}"
                    );
                    None
                }
                Verdict::Unknown => None,
            };
            if let Some(w) = shadowed {
                findings.push(AuditFinding {
                    level: AuditLevel::Deny,
                    code: "shadowed".into(),
                    rule: name_j.clone(),
                    other: Some(name_i.clone()),
                    detail: format!(
                        "every line this rule matches is already claimed by earlier rule \
                         {name_i}; the category can never fire"
                    ),
                    witness: Some(w),
                });
                continue; // a dead rule's overlaps are moot
            }
            // Overlap: same-region co-match, winner decided by order.
            let (Some(na), Some(nb)) = (line_nfa(view_i), line_nfa(view_j)) else {
                continue;
            };
            let alpha = rep_alphabet(&[na, nb]);
            let witness = [
                region_overlap(na, nb, &alpha, DEFAULT_CAP),
                region_overlap(nb, na, &alpha, DEFAULT_CAP),
            ]
            .into_iter()
            .find_map(|r| match r {
                Budget::Done(w) => w,
                Budget::Overflow => None,
            })
            .filter(|w| pred_i.matches(w) && pred_j.matches(w));
            if let Some(w) = witness {
                findings.push(AuditFinding {
                    level: AuditLevel::Allow,
                    code: "overlap".into(),
                    rule: name_i.clone(),
                    other: Some(name_j.clone()),
                    detail: format!(
                        "both rules can match the same characters of one line; catalog \
                         order makes {name_i} win"
                    ),
                    witness: Some(w),
                });
            }
        }
    }

    findings.sort_by(|a, b| {
        (a.level, &a.code, &a.rule, &a.other).cmp(&(b.level, &b.code, &b.rule, &b.other))
    });
    SystemAudit {
        system: system.to_string(),
        rules: health,
        findings,
    }
}

/// Audits the built-in catalog of one system.
pub fn audit_system(system: SystemId) -> SystemAudit {
    let rules: Vec<(String, String)> = catalog(system)
        .iter()
        .map(|spec| (spec.name.to_string(), spec.rule.to_string()))
        .collect();
    audit_rules(&system.to_string(), &rules)
}

/// Audits every system's built-in catalog.
pub fn audit_all() -> AuditReport {
    AuditReport {
        version: SCHEMA_VERSION,
        systems: ALL_SYSTEMS.iter().map(|&s| audit_system(s)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules(defs: &[(&str, &str)]) -> Vec<(String, String)> {
        defs.iter()
            .map(|(n, r)| (n.to_string(), r.to_string()))
            .collect()
    }

    #[test]
    fn injected_shadow_is_detected_with_witness() {
        // NARROW's language (lines containing "EXT3-fs error") is
        // contained in BROAD's (lines containing "fs error"): with
        // BROAD earlier in the catalog, NARROW can never fire.
        let audit = audit_rules(
            "test",
            &rules(&[("BROAD", "/fs error/"), ("NARROW", "/EXT3-fs error/")]),
        );
        let f = audit
            .findings
            .iter()
            .find(|f| f.code == "shadowed")
            .expect("shadowing not detected");
        assert_eq!(f.level, AuditLevel::Deny);
        assert_eq!(f.rule, "NARROW");
        assert_eq!(f.other.as_deref(), Some("BROAD"));
        let w = f.witness.as_deref().expect("no witness");
        let narrow = Predicate::parse("/EXT3-fs error/").unwrap();
        let broad = Predicate::parse("/fs error/").unwrap();
        assert!(narrow.matches(w) && broad.matches(w), "witness {w:?}");
    }

    #[test]
    fn reversed_order_is_not_shadowing() {
        // Narrow before broad: the broad rule still gets every line
        // the narrow one does not claim — alive, merely overlapping.
        let audit = audit_rules(
            "test",
            &rules(&[("NARROW", "/EXT3-fs error/"), ("BROAD", "/fs error/")]),
        );
        assert!(audit.findings.iter().all(|f| f.code != "shadowed"));
        let overlap = audit
            .findings
            .iter()
            .find(|f| f.code == "overlap")
            .expect("overlap not reported");
        assert_eq!(overlap.level, AuditLevel::Allow);
        let w = overlap.witness.as_deref().unwrap();
        assert!(w.contains("EXT3-fs error"), "witness {w:?}");
    }

    #[test]
    fn identical_rules_shadow() {
        let audit = audit_rules("test", &rules(&[("A", "/panic/"), ("B", "/panic/")]));
        let f = audit
            .findings
            .iter()
            .find(|f| f.code == "shadowed")
            .unwrap();
        assert_eq!(f.rule, "B");
        assert_eq!(f.witness.as_deref(), Some("panic"));
    }

    #[test]
    fn disjoint_rules_report_nothing() {
        let audit = audit_rules("test", &rules(&[("A", "/alpha/"), ("B", "/beta9/")]));
        assert!(
            audit.findings.is_empty(),
            "unexpected findings: {:?}",
            audit.findings
        );
    }

    #[test]
    fn vacuity_findings() {
        // `$.` matches nothing; `!//` negates a universal pattern.
        let audit = audit_rules(
            "test",
            &rules(&[("DEAD", r"/$./"), ("NEGUNIV", "!/x*/"), ("OK", "/fine/")]),
        );
        let codes: Vec<&str> = audit.findings.iter().map(|f| f.code.as_str()).collect();
        assert!(codes.contains(&"empty-language"), "{codes:?}");
        assert!(codes.contains(&"negated-universal"), "{codes:?}");
        assert!(codes.contains(&"vacuous-rule"), "{codes:?}");
        // DEAD is empty-language, not "shadowed by" anything.
        assert!(audit.findings.iter().all(|f| f.code != "shadowed"));
    }

    #[test]
    fn contradiction_detected_structurally() {
        let audit = audit_rules("test", &rules(&[("CONTRA", "/a/ && !/a/")]));
        assert!(audit.findings.iter().any(|f| f.code == "contradiction"));
        assert!(audit.findings.iter().any(|f| f.code == "vacuous-rule"));
    }

    #[test]
    fn vacuous_field_constraint() {
        // A field can never contain whitespace, so `$2 ~ /a b/` is
        // unsatisfiable.
        let audit = audit_rules("test", &rules(&[("WSFIELD", "($2 ~ /a b/)")]));
        let codes: Vec<&str> = audit.findings.iter().map(|f| f.code.as_str()).collect();
        assert!(codes.contains(&"vacuous-field"), "{codes:?}");
        assert!(codes.contains(&"vacuous-rule"), "{codes:?}");
    }

    #[test]
    fn field_rules_compare_at_field_level() {
        let audit = audit_rules(
            "test",
            &rules(&[("ANYDIGIT", r"($3 ~ /[0-9]/)"), ("EXACT", "($3 ~ /^7$/)")]),
        );
        let f = audit
            .findings
            .iter()
            .find(|f| f.code == "shadowed")
            .unwrap();
        assert_eq!(f.rule, "EXACT");
        let w = f.witness.as_deref().unwrap();
        let exact = Predicate::parse("($3 ~ /^7$/)").unwrap();
        assert!(exact.matches(w), "witness {w:?}");
    }

    #[test]
    fn always_check_flagged_for_factorless_rules() {
        let audit = audit_rules("test", &rules(&[("NOFACTOR", r"/\d\d\d/")]));
        let f = audit
            .findings
            .iter()
            .find(|f| f.code == "always-check")
            .expect("always-check missing");
        assert_eq!(f.level, AuditLevel::Warn);
        assert!(audit.rules[0].always_check);
        assert_eq!(audit.rules[0].factors, 0);
    }

    #[test]
    fn health_metrics_populate() {
        let audit = audit_rules("test", &rules(&[("R", "/ab(c|d)/")]));
        let h = &audit.rules[0];
        assert!(h.insts > 0);
        assert_eq!(h.thread_bound, 4); // a, b, c, d
        assert_eq!(h.factors, 1); // "ab"
        assert_eq!(h.weakest_factor_len, 2);
        assert!(!h.always_check);
    }

    #[test]
    fn builtin_catalogs_have_no_deny_findings() {
        for &sys in &ALL_SYSTEMS {
            let audit = audit_system(sys);
            let denies: Vec<_> = audit
                .findings
                .iter()
                .filter(|f| f.level == AuditLevel::Deny)
                .collect();
            assert!(denies.is_empty(), "{sys}: {denies:?}");
            assert_eq!(audit.rules.len(), catalog(sys).len());
        }
    }
}
