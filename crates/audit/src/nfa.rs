//! Decidable language analyses over compiled Pike-VM programs.
//!
//! Everything here works on the instruction listings that
//! [`sclog_rules::Regex::program`] exposes, under the engine's actual
//! matching semantics: *unanchored substring search*. The language of a
//! pattern `A` is therefore
//!
//! ```text
//! L(A) = { s : A matches somewhere inside s }
//! ```
//!
//! Three searches are provided, all by breadth-first exploration of a
//! determinized product configuration space:
//!
//! * [`inclusion`] — is `L(sub) ⊆ L(sup)`? Returns the shortest
//!   counterexample when not.
//! * [`shortest_member`] — the shortest string in `L(A)`, or proof the
//!   language is empty.
//! * [`region_overlap`] — can both patterns match the *same line* with
//!   their match regions sharing at least one character? (Plain
//!   language intersection is vacuous under substring semantics — any
//!   two non-empty patterns co-match the concatenation of their
//!   witnesses — so overlap is defined on regions instead.)
//!
//! Decidability rests on two facts: the engine has no backreferences
//! (each program is a true NFA), and only finitely many character
//! behaviours exist per program pair, so the infinite alphabet
//! collapses to the finite *representative alphabet* of
//! [`rep_alphabet`]. Every search carries a state-count cap and reports
//! [`Budget::Overflow`] instead of looping on adversarial inputs; the
//! caps are far above what any catalog pattern reaches.
//!
//! A subtlety worth naming: product states store the *raw* (pre-
//! closure) successor pcs, not the closed thread set. A thread parked
//! on a `$` assertion dies in the mid-string closure but lives in the
//! end-of-string closure, so acceptance must re-close the raw set with
//! `at_end = true` — storing only the mid-string closure would
//! silently drop every `$`-anchored accept.

use sclog_rules::{ProgInst, Regex};
use std::collections::{BTreeSet, HashMap, VecDeque};

/// A compiled NFA program plus the analyses' helper views.
#[derive(Debug, Clone)]
pub struct Nfa {
    prog: Vec<ProgInst>,
}

/// Result of an epsilon closure: the live consuming program counters
/// (sorted, deduplicated) and whether `Match` was reached.
struct Closure {
    consuming: Vec<usize>,
    matched: bool,
}

impl Nfa {
    /// Wraps a compiled regex's program.
    pub fn new(re: &Regex) -> Nfa {
        Nfa { prog: re.program() }
    }

    /// Number of instructions in the program.
    pub fn insts(&self) -> usize {
        self.prog.len()
    }

    /// Upper bound on simultaneously live VM threads: consuming
    /// instructions only, since the thread set dedups by pc.
    pub fn thread_bound(&self) -> usize {
        self.prog.iter().filter(|i| i.is_consuming()).count()
    }

    /// True when the program contains a `^` or `$` assertion.
    pub fn has_anchors(&self) -> bool {
        self.prog
            .iter()
            .any(|i| matches!(i, ProgInst::Start | ProgInst::End))
    }

    /// True when the epsilon edges (`Split`/`Jump`, plus assertions,
    /// which forward without consuming) contain a cycle — e.g. `(a*)*`
    /// compiles to one. The VM tolerates these via pc dedup, but they
    /// are dead weight worth flagging.
    pub fn has_epsilon_cycle(&self) -> bool {
        // Colors: 0 = unvisited, 1 = on the DFS stack, 2 = done.
        fn visit(prog: &[ProgInst], color: &mut [u8], pc: usize) -> bool {
            match color[pc] {
                1 => return true,
                2 => return false,
                _ => {}
            }
            color[pc] = 1;
            let mut targets: Vec<usize> = Vec::new();
            match &prog[pc] {
                ProgInst::Jump(t) => targets.push(*t),
                ProgInst::Split(a, b) => {
                    targets.push(*a);
                    targets.push(*b);
                }
                ProgInst::Start | ProgInst::End => targets.push(pc + 1),
                _ => {}
            }
            let mut hit = false;
            for t in targets {
                if visit(prog, color, t) {
                    hit = true;
                }
            }
            color[pc] = 2;
            hit
        }
        let mut color = vec![0u8; self.prog.len()];
        (0..self.prog.len()).any(|pc| color[pc] == 0 && visit(&self.prog, &mut color, pc))
    }

    /// True when the pattern effectively begins with `.*`: the initial
    /// closure contains an `Any` instruction that loops back into
    /// itself. Under unanchored search such a prefix is redundant and
    /// only widens the live thread set.
    pub fn leading_dot_loop(&self) -> bool {
        let init = self.close(&[0], false, false);
        init.consuming.iter().any(|&pc| {
            matches!(self.prog[pc], ProgInst::Any)
                && self.close(&[pc + 1], false, false).consuming.contains(&pc)
        })
    }

    /// Epsilon-closes `seeds` under the position flags.
    fn close(&self, seeds: &[usize], at_start: bool, at_end: bool) -> Closure {
        let mut on = vec![false; self.prog.len()];
        let mut stack: Vec<usize> = seeds.to_vec();
        let mut consuming = Vec::new();
        let mut matched = false;
        while let Some(pc) = stack.pop() {
            if on[pc] {
                continue;
            }
            on[pc] = true;
            match &self.prog[pc] {
                ProgInst::Match => matched = true,
                ProgInst::Jump(t) => stack.push(*t),
                ProgInst::Split(a, b) => {
                    stack.push(*a);
                    stack.push(*b);
                }
                ProgInst::Start => {
                    if at_start {
                        stack.push(pc + 1);
                    }
                }
                ProgInst::End => {
                    if at_end {
                        stack.push(pc + 1);
                    }
                }
                _ => consuming.push(pc),
            }
        }
        consuming.sort_unstable();
        Closure { consuming, matched }
    }

    /// Successor raw pcs after the pcs in `consuming` read `c`.
    fn step(&self, consuming: &[usize], c: char) -> Vec<usize> {
        consuming
            .iter()
            .filter(|&&pc| self.prog[pc].matches_char(c))
            .map(|&pc| pc + 1)
            .collect()
    }
}

/// The next Unicode scalar after `c`, skipping the surrogate gap.
fn succ(c: char) -> Option<char> {
    if c == char::MAX {
        None
    } else if c == '\u{D7FF}' {
        Some('\u{E000}')
    } else {
        char::from_u32(c as u32 + 1)
    }
}

/// The representative alphabet for a set of programs.
///
/// Partitions the full scalar space into classes inside which every
/// character behaves identically for *every* consuming instruction of
/// *every* given program, then returns one representative per class.
/// Whitespace boundaries are always included so a class never mixes
/// whitespace with non-whitespace characters (field analyses restrict
/// the alphabet by `char::is_whitespace`). Representatives prefer
/// printable ASCII so witnesses read as plausible log text.
pub fn rep_alphabet(nfas: &[&Nfa]) -> Vec<char> {
    let mut bounds: BTreeSet<char> = BTreeSet::new();
    bounds.insert('\0');
    let mut cut = |lo: char, hi: char| {
        bounds.insert(lo);
        if let Some(s) = succ(hi) {
            bounds.insert(s);
        }
    };
    for ws in [' ', '\t', '\n', '\r', '\u{b}', '\u{c}'] {
        cut(ws, ws);
    }
    for nfa in nfas {
        for inst in &nfa.prog {
            match inst {
                ProgInst::Char(c) => cut(*c, *c),
                ProgInst::Any => cut('\n', '\n'),
                ProgInst::Class { ranges, .. } => {
                    for &(lo, hi) in ranges {
                        cut(lo, hi);
                    }
                }
                _ => {}
            }
        }
    }
    let starts: Vec<char> = bounds.into_iter().collect();
    let mut reps = Vec::with_capacity(starts.len());
    for (i, &lo) in starts.iter().enumerate() {
        // The class is [lo, next_start); pick a printable member when
        // one exists (the class never straddles ' ' or '~' without a
        // printable member, because all behaviours inside it agree).
        let hi = match starts.get(i + 1) {
            Some(&next) => char::from_u32(next as u32 - 1).unwrap_or('\u{D7FF}'),
            None => char::MAX,
        };
        let rep = if lo <= '~' && hi >= ' ' {
            lo.max(' ')
        } else {
            lo
        };
        reps.push(rep);
    }
    reps
}

/// Outcome of a bounded search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Budget<T> {
    /// The search ran to completion with this answer.
    Done(T),
    /// The state cap was hit before the search settled; the question
    /// is left unanswered (the audit reports such pairs as unknown).
    Overflow,
}

/// Default state-count cap for the product searches: generous for the
/// catalog's tiny programs, small enough to bound adversarial input.
pub const DEFAULT_CAP: usize = 200_000;

/// One automaton's share of a product state: the raw (pre-closure)
/// seed pcs at the current position.
type Raw = Vec<usize>;

/// BFS bookkeeping: interned states, parent edges, work queue. Parent
/// edges carry `None` for epsilon moves (same input string as the
/// parent) so witness reconstruction skips them.
struct Bfs<K> {
    ids: HashMap<K, usize>,
    parents: Vec<(usize, Option<char>)>,
    queue: VecDeque<(usize, K)>,
    seen: usize,
}

impl<K: Clone + std::hash::Hash + Eq> Bfs<K> {
    fn new() -> Self {
        Bfs {
            ids: HashMap::new(),
            parents: Vec::new(),
            queue: VecDeque::new(),
            seen: 0,
        }
    }

    /// Interns `key`; enqueues it when new. Returns its id.
    fn push(&mut self, key: K, parent: (usize, Option<char>)) {
        if self.ids.contains_key(&key) {
            return;
        }
        let id = self.parents.len();
        self.ids.insert(key.clone(), id);
        self.parents.push(parent);
        self.seen += 1;
        self.queue.push_back((id, key));
    }

    /// Reconstructs the string spelled by the path to `id`.
    fn path(&self, mut id: usize) -> String {
        let mut chars = Vec::new();
        while id != 0 {
            let (p, c) = self.parents[id];
            if let Some(c) = c {
                chars.push(c);
            }
            id = p;
        }
        chars.reverse();
        chars.into_iter().collect()
    }
}

/// Checks `L(sub) ⊆ L(sup)` over the representative `alphabet`.
///
/// Returns `Done(None)` when inclusion holds, `Done(Some(w))` with the
/// shortest (in the representative projection) counterexample
/// `w ∈ L(sub) \ L(sup)` when it does not, and `Overflow` past `cap`
/// states.
pub fn inclusion(sub: &Nfa, sup: &Nfa, alphabet: &[char], cap: usize) -> Budget<Option<String>> {
    // State: (raw_sub, raw_sup, sub_already_matched, at_position_0).
    // A state where sup has matched mid-string is pruned at creation —
    // every extension is then in L(sup), so no counterexample lies
    // beyond it. Once sub has matched, its raw set is cleared: the
    // sticky flag carries everything that still matters.
    type Key = (Raw, Raw, bool, bool);
    let mut bfs: Bfs<Key> = Bfs::new();
    let add = |bfs: &mut Bfs<Key>,
               raw_a: Raw,
               raw_b: Raw,
               matched_a: bool,
               at_start: bool,
               parent: (usize, Option<char>)| {
        let ma = matched_a || sub.close(&raw_a, at_start, false).matched;
        if sup.close(&raw_b, at_start, false).matched {
            return;
        }
        let key = (if ma { Vec::new() } else { raw_a }, raw_b, ma, at_start);
        bfs.push(key, parent);
    };
    add(&mut bfs, vec![0], vec![0], false, true, (0, None));

    while let Some((id, (raw_a, raw_b, ma, at_start))) = bfs.queue.pop_front() {
        if bfs.seen > cap {
            return Budget::Overflow;
        }
        // Acceptance if the string ended here: re-close with at_end.
        let acc_a = ma || sub.close(&raw_a, at_start, true).matched;
        let acc_b = sup.close(&raw_b, at_start, true).matched;
        if acc_a && !acc_b {
            return Budget::Done(Some(bfs.path(id)));
        }
        let ca = sub.close(&raw_a, at_start, false);
        let cb = sup.close(&raw_b, at_start, false);
        for &c in alphabet {
            // Both sides reseed pc 0: unanchored search restarts an
            // attempt at every position.
            let mut na = sub.step(&ca.consuming, c);
            na.push(0);
            na.sort_unstable();
            na.dedup();
            let mut nb = sup.step(&cb.consuming, c);
            nb.push(0);
            nb.sort_unstable();
            nb.dedup();
            add(&mut bfs, na, nb, ma, false, (id, Some(c)));
        }
    }
    Budget::Done(None)
}

/// Finds the shortest member of `L(A)` over the representative
/// `alphabet`, or `Done(None)` when the language is empty.
pub fn shortest_member(nfa: &Nfa, alphabet: &[char], cap: usize) -> Budget<Option<String>> {
    type Key = (Raw, bool);
    let mut bfs: Bfs<Key> = Bfs::new();
    bfs.push((vec![0], true), (0, None));
    while let Some((id, (raw, at_start))) = bfs.queue.pop_front() {
        if bfs.seen > cap {
            return Budget::Overflow;
        }
        // The at_end=true closure is a superset of the mid-string one,
        // so it alone decides membership of the string read so far.
        if nfa.close(&raw, at_start, true).matched {
            return Budget::Done(Some(bfs.path(id)));
        }
        let cl = nfa.close(&raw, at_start, false);
        for &c in alphabet {
            let mut next = nfa.step(&cl.consuming, c);
            next.push(0);
            next.sort_unstable();
            next.dedup();
            bfs.push((next, false), (id, Some(c)));
        }
    }
    Budget::Done(None)
}

/// Stage of the region-overlap product machine (see [`region_overlap`]).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Stage {
    /// Neither match has started; consuming filler characters.
    Idle,
    /// `A`'s attempt is running (started at some guessed `s1`).
    AOnly(Raw),
    /// Both attempts run; `B` started at some guessed `s2 >= s1`.
    /// `a_done`/`b_done` record a match ending strictly after `s2`;
    /// `progressed` records that a character was consumed since `s2`.
    Both {
        raw_a: Raw,
        a_done: bool,
        raw_b: Raw,
        b_done: bool,
        progressed: bool,
    },
}

/// Decides whether `a` and `b` can match one line with *overlapping
/// match regions* — some character of the line inside both matches.
///
/// The search nondeterministically guesses `A`'s start `s1` and `B`'s
/// start `s2 >= s1` (run both argument orders to cover `s2 < s1`),
/// then requires each automaton to complete a match ending strictly
/// after `s2`, which makes the shared region `[s2, min(e1, e2))`
/// non-empty. Returns the shortest witness line, `Done(None)` for no
/// overlap, or `Overflow`.
pub fn region_overlap(a: &Nfa, b: &Nfa, alphabet: &[char], cap: usize) -> Budget<Option<String>> {
    type Key = (Stage, bool);
    let mut bfs: Bfs<Key> = Bfs::new();
    // Normalizes a Both stage (fold mid-closure matches into the done
    // flags, clear finished raw sets) before interning.
    let add = |bfs: &mut Bfs<Key>, stage: Stage, at_start: bool, parent: (usize, Option<char>)| {
        let stage = match stage {
            Stage::Both {
                raw_a,
                a_done,
                raw_b,
                b_done,
                progressed,
            } => {
                let a_done = a_done || (progressed && a.close(&raw_a, at_start, false).matched);
                let b_done = b_done || (progressed && b.close(&raw_b, at_start, false).matched);
                Stage::Both {
                    raw_a: if a_done { Vec::new() } else { raw_a },
                    a_done,
                    raw_b: if b_done { Vec::new() } else { raw_b },
                    b_done,
                    progressed,
                }
            }
            s => s,
        };
        bfs.push((stage, at_start), parent);
    };
    add(&mut bfs, Stage::Idle, true, (0, None));

    while let Some((id, (stage, at_start))) = bfs.queue.pop_front() {
        if bfs.seen > cap {
            return Budget::Overflow;
        }
        match &stage {
            Stage::Idle => {
                // Epsilon: start A's attempt here…
                add(&mut bfs, Stage::AOnly(vec![0]), at_start, (id, None));
                // …or consume one filler character.
                for &c in alphabet {
                    add(&mut bfs, Stage::Idle, false, (id, Some(c)));
                }
            }
            Stage::AOnly(raw_a) => {
                // Epsilon: start B's attempt here (s2 = current pos).
                add(
                    &mut bfs,
                    Stage::Both {
                        raw_a: raw_a.clone(),
                        a_done: false,
                        raw_b: vec![0],
                        b_done: false,
                        progressed: false,
                    },
                    at_start,
                    (id, None),
                );
                // Or advance A's attempt by one character (no reseed:
                // the attempt start is fixed; other starts are other
                // nondeterministic branches).
                let ca = a.close(raw_a, at_start, false);
                for &c in alphabet {
                    let next = a.step(&ca.consuming, c);
                    if next.is_empty() {
                        continue; // attempt died; cannot reach e1 > s2
                    }
                    add(&mut bfs, Stage::AOnly(next), false, (id, Some(c)));
                }
            }
            Stage::Both {
                raw_a,
                a_done,
                raw_b,
                b_done,
                progressed,
            } => {
                // Accept when both matches can end here, strictly
                // after s2: sticky flags or `$`-closures.
                let a_fin = *a_done || (*progressed && a.close(raw_a, at_start, true).matched);
                let b_fin = *b_done || (*progressed && b.close(raw_b, at_start, true).matched);
                if a_fin && b_fin {
                    return Budget::Done(Some(bfs.path(id)));
                }
                let ca = a.close(raw_a, at_start, false);
                let cb = b.close(raw_b, at_start, false);
                for &c in alphabet {
                    let na = a.step(&ca.consuming, c);
                    let nb = b.step(&cb.consuming, c);
                    if (!a_done && na.is_empty()) || (!b_done && nb.is_empty()) {
                        continue; // an unfinished side died
                    }
                    add(
                        &mut bfs,
                        Stage::Both {
                            raw_a: if *a_done { Vec::new() } else { na },
                            a_done: *a_done,
                            raw_b: if *b_done { Vec::new() } else { nb },
                            b_done: *b_done,
                            progressed: true,
                        },
                        false,
                        (id, Some(c)),
                    );
                }
            }
        }
    }
    Budget::Done(None)
}

/// True when the pattern matches the empty string anywhere, which for
/// an anchor-free program means it matches *every* string.
pub fn matches_empty(nfa: &Nfa) -> bool {
    nfa.close(&[0], true, true).matched
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nfa(pat: &str) -> Nfa {
        Nfa::new(&Regex::new(pat).unwrap())
    }

    fn incl(sub: &str, sup: &str) -> Option<String> {
        let (a, b) = (nfa(sub), nfa(sup));
        let alpha = rep_alphabet(&[&a, &b]);
        match inclusion(&a, &b, &alpha, DEFAULT_CAP) {
            Budget::Done(w) => w,
            Budget::Overflow => panic!("overflow on /{sub}/ vs /{sup}/"),
        }
    }

    fn overlap(x: &str, y: &str) -> Option<String> {
        let (a, b) = (nfa(x), nfa(y));
        let alpha = rep_alphabet(&[&a, &b]);
        match region_overlap(&a, &b, &alpha, DEFAULT_CAP) {
            Budget::Done(w) => w,
            Budget::Overflow => panic!("overflow on /{x}/ vs /{y}/"),
        }
    }

    #[test]
    fn literal_inclusion_is_substring_containment() {
        // L(A) ⊆ L(B) for literals iff A contains B.
        assert_eq!(incl("EXT3-fs error", "fs error"), None);
        let w = incl("fs error", "EXT3-fs error").expect("not included");
        let (sub, sup) = (
            Regex::new("fs error").unwrap(),
            Regex::new("EXT3-fs error").unwrap(),
        );
        assert!(sub.is_match(&w) && !sup.is_match(&w), "witness {w:?}");
    }

    #[test]
    fn inclusion_handles_classes_and_alternation() {
        assert_eq!(incl("abc", "a[a-z]c"), None);
        assert_eq!(incl("cat", "cat|dog"), None);
        assert!(incl("cat|dog", "cat").is_some());
        assert_eq!(incl("a[0-4]z", "a[0-9]z"), None);
        assert!(incl("a[0-9]z", "a[0-4]z").is_some());
    }

    #[test]
    fn inclusion_respects_anchors() {
        assert_eq!(incl("abc$", "abc"), None);
        let w = incl("abc", "abc$").expect("not included");
        assert!(Regex::new("abc").unwrap().is_match(&w));
        assert!(!Regex::new("abc$").unwrap().is_match(&w));
        assert_eq!(incl("^abc", "abc"), None);
        assert!(incl("abc", "^abc").is_some());
    }

    #[test]
    fn inclusion_with_repeats() {
        assert_eq!(incl("aaa", "a+"), None);
        assert_eq!(incl("ab", "a.*b"), None);
        assert!(incl("a.*b", "ab").is_some());
        assert_eq!(incl("err: [0-9][0-9]", r"err: \d"), None);
    }

    #[test]
    fn universal_sup_includes_everything() {
        assert_eq!(incl("whatever", "x*"), None);
        assert_eq!(incl("whatever", ""), None);
    }

    #[test]
    fn empty_language_and_members() {
        let n = nfa("abc");
        let alpha = rep_alphabet(&[&n]);
        assert_eq!(
            shortest_member(&n, &alpha, DEFAULT_CAP),
            Budget::Done(Some("abc".into()))
        );
        // `$.` can never match: a character after end-of-text.
        let dead = nfa("$.");
        let alpha = rep_alphabet(&[&dead]);
        assert_eq!(
            shortest_member(&dead, &alpha, DEFAULT_CAP),
            Budget::Done(None)
        );
    }

    #[test]
    fn universal_detection() {
        assert!(matches_empty(&nfa("a*")));
        assert!(matches_empty(&nfa("")));
        assert!(!matches_empty(&nfa("a")));
        // `^$` matches the empty string but is anchored, so it is not
        // universal; callers must check has_anchors too.
        assert!(matches_empty(&nfa("^$")));
        assert!(nfa("^$").has_anchors());
    }

    #[test]
    fn overlapping_literals_need_shared_characters() {
        // Suffix/prefix sharing: "abXc" vs "Xcd" share "Xc".
        let w = overlap("abXc", "Xcd").expect("should overlap");
        assert!(w.contains("abXcd"), "witness {w:?}");
        // Containment: "error" inside "fs error log".
        assert!(overlap("fs error log", "error").is_some());
        // Disjoint literals never share a region even though both can
        // appear in one line.
        assert_eq!(overlap("abc", "xyz"), None);
        // Shared chars with a compatible placement.
        assert_eq!(overlap("ab", "ba"), Some("aba".into()));
        // Shared chars but every placement conflicts.
        assert_eq!(overlap("aXb", "aYb"), None);
    }

    #[test]
    fn gap_rules_overlap_contained_literals() {
        // The Red Storm shape: /A .* B/ engulfs /C/ — the `.*` gap
        // characters are inside A's region, so containment overlaps.
        let w = overlap("from .* to", "to host").expect("should overlap");
        let (a, b) = (
            Regex::new("from .* to").unwrap(),
            Regex::new("to host").unwrap(),
        );
        assert!(a.is_match(&w) && b.is_match(&w), "witness {w:?}");
        assert!(overlap("from .* to", "middle").is_some());
    }

    #[test]
    fn anchored_overlap() {
        assert!(overlap("^foo", "foobar").is_some());
        // region(^a) = [0,1), region(b$) = [len-1,len): they can only
        // share if the line is one char matching both 'a' and 'b'.
        assert_eq!(overlap("^a", "b$"), None);
        assert!(overlap("^ab", "b$").is_some());
    }

    #[test]
    fn epsilon_cycles_and_dot_loops() {
        assert!(nfa("(a*)*b").has_epsilon_cycle());
        assert!(!nfa("a+b").has_epsilon_cycle());
        assert!(nfa(".*foo").leading_dot_loop());
        assert!(!nfa("foo.*bar").leading_dot_loop());
        assert!(!nfa("foo").leading_dot_loop());
    }

    #[test]
    fn rep_alphabet_covers_behaviours() {
        let n = nfa("[a-c]x|Q");
        let alpha = rep_alphabet(&[&n]);
        assert!(alpha.iter().any(|c| ('a'..='c').contains(c)));
        assert!(alpha.contains(&'x'));
        assert!(alpha.contains(&'Q'));
        assert!(alpha.iter().any(|c| !c.is_alphanumeric()));
        // Whitespace classes are always split out.
        assert!(alpha.contains(&' '));
    }

    #[test]
    fn thread_bound_counts_consuming_insts() {
        assert_eq!(nfa("abc").thread_bound(), 3);
        assert_eq!(nfa("a|b").thread_bound(), 2);
        assert_eq!(nfa("^a$").thread_bound(), 1);
        assert_eq!(nfa("a.[0-9]").insts(), 4); // 3 consuming + Match
    }
}
