//! Static analysis of the sclog alert-rule catalog.
//!
//! The five expert rule sets (77 categories total) that drive the
//! paper's alert tagging are ordinary data: awk-style predicates over
//! regexes compiled by the in-tree engine in `sclog_rules::re`. That
//! engine supports no backreferences, so every leaf denotes a true
//! regular language and questions about the *catalog* — not about any
//! particular log — are decidable:
//!
//! * **Shadowing** — first match wins, so a rule whose language is
//!   contained in an earlier rule's can never fire. Detected by a
//!   product-automaton inclusion search ([`inclusion`]) and reported
//!   at deny with a concrete witness line.
//! * **Overlap** — two rules that can match the *same characters* of
//!   one line are order-sensitive: reordering the catalog silently
//!   retags those lines. Detected by [`region_overlap`] and reported
//!   at allow with a witness.
//! * **Vacuity** — empty-language regexes, field constraints no
//!   whitespace-free token satisfies, universal patterns (and their
//!   negations), `p && !p` contradictions.
//! * **Prefilter coverage** — rules without a required literal factor
//!   escape the Aho–Corasick prescan and pay full NFA cost per line.
//! * **NFA health** — instruction and thread-count bounds, epsilon
//!   cycles, redundant leading `.*` under unanchored search.
//!
//! All searches run over a finite *representative alphabet* (one
//! character per equivalence class the involved programs can
//! distinguish — see [`rep_alphabet`]) and under an explicit state
//! [`Budget`], so the audit is total and fast. Every reported witness
//! is re-validated against the compiled predicates before it appears
//! in a finding.
//!
//! The `sclog-audit` binary renders the report ([`render_text`]) or
//! compares its JSON form against the committed golden snapshot
//! (`AUDIT.json`) as part of tier-1 verify.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checks;
pub mod nfa;
pub mod report;

pub use checks::{audit_all, audit_rules, audit_system, SCHEMA_VERSION};
pub use nfa::{
    inclusion, matches_empty, region_overlap, rep_alphabet, shortest_member, Budget, Nfa,
    DEFAULT_CAP,
};
pub use report::{check_golden, has_deny, render_text};
