//! A wall-clock micro-benchmark harness.
//!
//! Std-only replacement for criterion: warm up, run a fixed sample
//! count, report min/median/mean, and emit one JSON record per
//! benchmark on stdout (via [`sclog_types::json`]) so results stay
//! machine-readable. Runs under `cargo bench --offline` with no
//! external crates.
//!
//! Knobs: `SCLOG_BENCH_SAMPLES` (default 20) and
//! `SCLOG_BENCH_WARMUP` (default 3) rescale every benchmark.

use sclog_types::json::JsonObject;
use std::time::Instant;

/// Default measured samples per benchmark.
pub const DEFAULT_SAMPLES: usize = 20;

/// Default warm-up iterations (not recorded).
pub const DEFAULT_WARMUP: usize = 3;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
        .max(1)
}

/// A named group of benchmarks, mirroring criterion's
/// `benchmark_group` shape so the bench files read the same.
pub struct BenchGroup {
    name: String,
    /// Element count used to derive per-element throughput.
    throughput: Option<u64>,
    samples: usize,
    warmup: usize,
}

impl BenchGroup {
    /// Starts a group.
    pub fn new(name: &str) -> Self {
        BenchGroup {
            name: name.to_owned(),
            throughput: None,
            samples: env_usize("SCLOG_BENCH_SAMPLES", DEFAULT_SAMPLES),
            warmup: env_usize("SCLOG_BENCH_WARMUP", DEFAULT_WARMUP),
        }
    }

    /// Declares that each iteration processes `elements` items, adding
    /// per-element timing to the report.
    pub fn throughput_elements(&mut self, elements: u64) -> &mut Self {
        self.throughput = Some(elements);
        self
    }

    /// Sets the sample count for this group. `SCLOG_BENCH_SAMPLES`,
    /// when set, still wins: the env knob is the user's runtime
    /// intent and must rescale even benches that pick their own size.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        if std::env::var_os("SCLOG_BENCH_SAMPLES").is_none() {
            self.samples = samples.max(1);
        }
        self
    }

    /// Times `f` and prints a human line plus a JSON record. Returns
    /// the median nanoseconds so benches can derive cross-benchmark
    /// metrics (e.g. a batch-vs-streaming speedup record). For an
    /// A-vs-B comparison prefer [`BenchGroup::bench_pair`], which
    /// interleaves the two arms' samples.
    ///
    /// The closure's return value is black-boxed to keep the optimizer
    /// from deleting the measured work.
    pub fn bench<T>(&mut self, id: &str, mut f: impl FnMut() -> T) -> u128 {
        for _ in 0..self.warmup {
            std::hint::black_box(f());
        }
        let mut nanos: Vec<u128> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(f());
            nanos.push(start.elapsed().as_nanos());
        }
        self.report(id, nanos)
    }

    /// Times two closures with interleaved samples and reports each as
    /// its own record. Sequential arms drift apart on a busy host —
    /// frequency scaling and allocator state shift between one arm's
    /// samples and the next's — so any A-vs-B comparison (batch vs
    /// streaming, serial vs parallel) should sample both under the
    /// same conditions. The order within each round alternates
    /// (A B, B A, A B, …): always running B after A hands B whatever
    /// cache and scheduler state A leaves behind, a measurable
    /// position bias on a loaded single-CPU host. Returns both
    /// medians `(a, b)`.
    pub fn bench_pair<T, U>(
        &mut self,
        id_a: &str,
        mut fa: impl FnMut() -> T,
        id_b: &str,
        mut fb: impl FnMut() -> U,
    ) -> (u128, u128) {
        for _ in 0..self.warmup {
            std::hint::black_box(fa());
            std::hint::black_box(fb());
        }
        let mut nanos_a: Vec<u128> = Vec::with_capacity(self.samples);
        let mut nanos_b: Vec<u128> = Vec::with_capacity(self.samples);
        let mut time_a = |nanos_a: &mut Vec<u128>| {
            let start = Instant::now();
            std::hint::black_box(fa());
            nanos_a.push(start.elapsed().as_nanos());
        };
        let mut time_b = |nanos_b: &mut Vec<u128>| {
            let start = Instant::now();
            std::hint::black_box(fb());
            nanos_b.push(start.elapsed().as_nanos());
        };
        for round in 0..self.samples {
            if round % 2 == 0 {
                time_a(&mut nanos_a);
                time_b(&mut nanos_b);
            } else {
                time_b(&mut nanos_b);
                time_a(&mut nanos_a);
            }
        }
        (self.report(id_a, nanos_a), self.report(id_b, nanos_b))
    }

    /// Sorts the samples, prints the human line, emits the JSON record,
    /// and returns the median.
    fn report(&self, id: &str, mut nanos: Vec<u128>) -> u128 {
        nanos.sort_unstable();
        let min = nanos[0];
        let median = nanos[nanos.len() / 2];
        let mean = nanos.iter().sum::<u128>() / nanos.len() as u128;

        let full = format!("{}/{id}", self.name);
        let mut rec = JsonObject::new();
        rec.str("name", &full)
            .uint("samples", self.samples as u64)
            .uint("min_ns", min as u64)
            .uint("median_ns", median as u64)
            .uint("mean_ns", mean as u64);
        match self.throughput {
            Some(elems) if elems > 0 => {
                rec.uint("elements", elems);
                rec.num("median_ns_per_element", median as f64 / elems as f64);
                eprintln!(
                    "{full:<40} median {:>12}   ({:.1} ns/elem over {elems} elems)",
                    fmt_ns(median),
                    median as f64 / elems as f64,
                );
            }
            _ => {
                eprintln!(
                    "{full:<40} median {:>12}   min {}",
                    fmt_ns(median),
                    fmt_ns(min)
                );
            }
        }
        println!("{}", rec.finish());
        median
    }
}

/// Renders nanoseconds with a readable unit.
pub fn fmt_ns(ns: u128) -> String {
    match ns {
        0..=9_999 => format!("{ns} ns"),
        10_000..=9_999_999 => format!("{:.1} µs", ns as f64 / 1e3),
        10_000_000..=999_999_999 => format!("{:.1} ms", ns as f64 / 1e6),
        _ => format!("{:.2} s", ns as f64 / 1e9),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_ns_units() {
        assert_eq!(fmt_ns(17), "17 ns");
        assert_eq!(fmt_ns(12_300), "12.3 µs");
        assert_eq!(fmt_ns(45_600_000), "45.6 ms");
        assert_eq!(fmt_ns(2_500_000_000), "2.50 s");
    }

    #[test]
    fn bench_emits_sane_records() {
        let mut g = BenchGroup::new("unit");
        g.sample_size(3).throughput_elements(10);
        // Smoke: just make sure it runs and doesn't divide by zero.
        g.bench("noop", || 1 + 1);
    }

    #[test]
    fn bench_pair_reports_both_arms() {
        let mut g = BenchGroup::new("unit");
        g.sample_size(3);
        let (a, b) = g.bench_pair("one", || 1, "two", || 2);
        // Timing a trivial closure still takes nonzero wall clock.
        assert!(a > 0 && b > 0);
    }
}
