//! Figure 2(b): Liberty messages by source, sorted by decreasing
//! quantity — chatty admin-node head, corrupted-source tail.

use sclog_bench::{banner, HARNESS_SEED};
use sclog_core::figures::fig2b;
use sclog_core::Study;
use sclog_types::SystemId;

fn main() {
    banner(
        "Figure 2b",
        "Liberty messages by source",
        "alerts 0.02 / bg 0.001",
    );
    let run = Study::new(0.02, 0.001, HARNESS_SEED).run_system(SystemId::Liberty);
    let fig = fig2b(&run);
    println!("top 10 sources:");
    for (node, count) in fig.by_source.iter().take(10) {
        println!("  {:<12} {:>8}", run.log.interner.name(*node), count);
    }
    println!("  ...");
    println!("bottom 5 sources:");
    let n = fig.by_source.len();
    for (node, count) in &fig.by_source[n.saturating_sub(5)..] {
        println!("  {:<12} {:>8}", run.log.interner.name(*node), count);
    }
    let head = fig.by_source[0].1 as f64;
    let median = fig.by_source[n / 2].1 as f64;
    println!("\nsources: {n}   head/median ratio: {:.1}", head / median);
    println!(
        "corrupted (unattributable) sources: {}",
        fig.corrupted_sources
    );
    println!(
        "\npaper: 'the most prolific sources were administrative nodes or those\n\
         with significant problems; the cluster at the bottom is from messages\n\
         whose source field was corrupted, thwarting attribution.'"
    );
}
