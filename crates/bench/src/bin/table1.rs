//! Table 1: system characteristics at the time of collection.

use sclog_bench::banner;
use sclog_core::tables::Table1;

fn main() {
    banner("Table 1", "System characteristics", "static data");
    print!("{}", Table1::build().render());
    println!();
    println!("All values reproduce the paper's Table 1 exactly (static data).");
}
