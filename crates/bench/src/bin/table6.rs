//! Table 6: Red Storm syslog severity distribution among messages and
//! alerts. The paper's point: CRIT is dominated by one disk-failure
//! category; otherwise severity is a poor alert indicator.

use sclog_bench::{banner, compare};
use sclog_core::tables::SeverityTable;
use sclog_core::Study;
use sclog_types::SystemId;

fn main() {
    banner(
        "Table 6",
        "Red Storm syslog severity vs expert alerts",
        "uniform 0.01, seed 3",
    );
    // BUS_PAR's 1.55M CRIT alerts come from just 5 disk-failure storms;
    // at 1% scale the expected storm count is 0.05, so the seed is
    // chosen (3) such that one storm is present — without it the CRIT
    // row is empty, exactly as a lucky short observation window would
    // have looked on the real machine.
    let run = Study::new(0.01, 0.01, 3).run_system(SystemId::RedStorm);
    let table = SeverityTable::table6(&run);
    println!("{}", table.render());
    // Paper shares among alerts: CRIT 98.69%, ERR 0.75%, INFO 0.54%.
    let share = |name: &str| {
        table
            .rows
            .iter()
            .find(|r| r.0 == name)
            .map(|r| r.2 as f64 / table.alert_total().max(1) as f64 * 100.0)
            .unwrap_or(0.0)
    };
    compare("CRIT share of alerts (%)", 98.69, share("CRIT"));
    compare("ERR share of alerts (%)", 0.75, share("ERR"));
    compare("INFO share of alerts (%)", 0.54, share("INFO"));
    let crit = table.rows.iter().find(|r| r.0 == "CRIT").unwrap();
    println!(
        "\nCRIT alerts / CRIT messages: {:.4} (paper: 1550217/1552910 = 0.9983)",
        crit.2 as f64 / crit.1.max(1) as f64
    );
}
