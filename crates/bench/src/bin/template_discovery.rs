//! Related-work extension: automatic template discovery (SLCT-style,
//! refs. 7 and 27 in the paper) versus the expert rules.
//!
//! Discovery proposes message templates from raw bodies; we measure how
//! many expert-tagged alert messages fall under a discovered template —
//! the gap is the paper's point that "identifying candidate alerts is
//! tractable, [but] disambiguation in many cases requires external
//! context".

use sclog_bench::{banner, HARNESS_SEED};
use sclog_core::Study;
use sclog_rules::mine_templates;
use sclog_types::SystemId;

fn main() {
    banner(
        "refs. 7/27",
        "Automatic template discovery vs expert rules (Liberty)",
        "alerts 1.0 / bg 0.0002",
    );
    let run = Study::new(1.0, 0.0002, HARNESS_SEED).run_system(SystemId::Liberty);
    let templates = mine_templates(&run.log.messages, 50);
    println!(
        "discovered {} templates (support ≥ 50); top 12:",
        templates.len()
    );
    for t in templates.iter().take(12) {
        println!("  {:>7}  {:<14} {}", t.support, t.facility, t.pattern());
    }

    // Coverage: how many expert-tagged alert messages match some
    // discovered template?
    let mut covered = 0usize;
    for a in &run.tagged.alerts {
        let body = &run.log.messages[a.message_index].body;
        if templates.iter().any(|t| t.matches(body)) {
            covered += 1;
        }
    }
    println!(
        "\nexpert alerts covered by a discovered template: {covered} of {} ({:.1}%)",
        run.tagged.len(),
        covered as f64 / run.tagged.len().max(1) as f64 * 100.0
    );
    println!(
        "\nDiscovery finds the *shapes* of frequent messages — including benign\n\
         background — but cannot decide which shapes are alerts; that decision\n\
         (the expert tagging this repo encodes) needs operational context."
    );
}
