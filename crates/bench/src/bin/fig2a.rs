//! Figure 2(a): Liberty messages per hour, with the OS-upgrade regime
//! shift detected by CUSUM.

use sclog_bench::{banner, downsample, sparkline, HARNESS_SEED};
use sclog_core::figures::fig2a;
use sclog_core::Study;
use sclog_types::{Duration, SystemId};

fn main() {
    banner(
        "Figure 2a",
        "Liberty messages bucketed by hour",
        "alerts 0.05 / bg 0.0005",
    );
    let run = Study::new(0.05, 0.0005, HARNESS_SEED).run_system(SystemId::Liberty);
    let fig = fig2a(&run, Duration::from_hours(24));
    println!("daily message counts ({} days):", fig.counts.len());
    println!("{}", sparkline(&downsample(&fig.counts, 105)));
    println!("\ndetected change points (CUSUM, threshold 8σ):");
    for cp in &fig.changepoints {
        println!(
            "  day {:>3} ({:>4.1}% of span): mean {:>8.1} -> {:>8.1} msgs/day",
            cp.index,
            cp.index as f64 / fig.counts.len() as f64 * 100.0,
            cp.mean_before,
            cp.mean_after
        );
    }
    println!(
        "\npaper: first major shift at the end of Q1-2005 (~35% of span), an OS\n\
         upgrade that raised traffic sharply; later shifts 'not well understood'."
    );
    assert!(!fig.changepoints.is_empty(), "regime shift not detected");
}
