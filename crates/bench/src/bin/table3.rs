//! Table 3: alert type mix, raw vs filtered. The paper's headline:
//! hardware dominates raw alerts (98.04%) but software dominates
//! filtered alerts (64.01%).

use sclog_bench::{alert_table_study, banner, compare, ALERT_TABLE_SCALE};
use sclog_core::tables::Table3;
use sclog_types::AlertType;

fn main() {
    banner(
        "Table 3",
        "Alert types before and after filtering",
        &format!("alerts {ALERT_TABLE_SCALE} / bg 0.0005"),
    );
    let runs = alert_table_study().run_all();
    let table = Table3::build(&runs);
    print!("{}", table.render());
    println!();
    println!("Share comparison (percent):");
    compare(
        "Hardware raw share",
        98.04,
        table.raw_share(AlertType::Hardware) * 100.0,
    );
    compare(
        "Software raw share",
        0.08,
        table.raw_share(AlertType::Software) * 100.0,
    );
    compare(
        "Indet.   raw share",
        1.88,
        table.raw_share(AlertType::Indeterminate) * 100.0,
    );
    compare(
        "Hardware filtered share",
        18.78,
        table.filtered_share(AlertType::Hardware) * 100.0,
    );
    compare(
        "Software filtered share",
        64.01,
        table.filtered_share(AlertType::Software) * 100.0,
    );
    compare(
        "Indet.   filtered share",
        17.21,
        table.filtered_share(AlertType::Indeterminate) * 100.0,
    );
    println!();
    println!(
        "Filtering flips the dominant type from hardware to software: {}",
        if table.filtered_share(AlertType::Software) > table.filtered_share(AlertType::Hardware) {
            "REPRODUCED"
        } else {
            "NOT reproduced"
        }
    );
}
