//! Section 4's spatial-correlation discovery: the SMP clock bug (CPU
//! alerts) is spatially correlated across nodes; ECC alerts are not.

use sclog_bench::{banner, HARNESS_SEED};
use sclog_core::figures::spatial;
use sclog_core::Study;
use sclog_types::{Duration, SystemId};

fn main() {
    banner(
        "§4",
        "Spatial correlation: CPU clock bug vs ECC",
        "alerts 1.0 (CPU+ECC) / bg 0.00002",
    );
    let run =
        Study::new(1.0, 0.00002, HARNESS_SEED).run_subset(SystemId::Thunderbird, &["CPU", "ECC"]);
    let window = Duration::from_mins(2);
    for cat in ["CPU", "ECC"] {
        let s = spatial(&run, cat, window).expect("category fires");
        println!(
            "{cat:<4} active windows {:>5}  mean sources/window {:>6.2}  multi-source fraction {:.3}",
            s.active_windows, s.mean_sources_per_window, s.multi_source_fraction
        );
    }
    println!(
        "\npaper: 'we were surprised to observe clear spatial correlations' in\n\
         CPU clock alerts — a Linux SMP kernel bug triggered by communication-\n\
         heavy jobs across whole node sets — while ECC failures are driven by\n\
         independent physical processes."
    );
}
