//! Table 2: log characteristics, regenerated at scale and compared
//! against the paper's counts.

use sclog_bench::{banner, compare, scaled, table_study, TABLE_SCALE};
use sclog_core::tables::Table2;

/// The paper's Table 2 (messages, alerts) per system.
const PAPER: [(&str, u64, u64); 5] = [
    ("Blue Gene/L", 4_747_963, 348_460),
    ("Thunderbird", 211_212_192, 3_248_239),
    ("Red Storm", 219_096_168, 1_665_744),
    ("Spirit (ICC2)", 272_298_969, 172_816_564),
    ("Liberty", 265_569_231, 2452),
];

fn main() {
    banner(
        "Table 2",
        "Log characteristics",
        &format!("uniform {TABLE_SCALE}"),
    );
    let runs = table_study().run_all();
    let table = Table2::build(&runs);
    print!("{}", table.render());
    println!();
    println!("Paper-vs-measured (paper counts scaled by {TABLE_SCALE}):");
    for (row, (name, msgs, alerts)) in table.rows.iter().zip(PAPER) {
        assert_eq!(row.system, name);
        compare(
            &format!("{name} messages"),
            scaled(msgs, TABLE_SCALE),
            row.messages as f64,
        );
        compare(
            &format!("{name} alerts"),
            scaled(alerts, TABLE_SCALE),
            row.alerts as f64,
        );
    }
    println!();
    println!("Compression ratios (paper, gzip: 10.2 / 4.8 / 24.7 / 18.1 / 36.7):");
    for row in &table.rows {
        println!(
            "  {:<14} {:.1}x",
            row.system,
            row.size_bytes as f64 / row.compressed_bytes.max(1) as f64
        );
    }
    println!();
    println!("Category counts observed (paper: 41/10/12/8/6):");
    for row in &table.rows {
        println!("  {:<14} {}", row.system, row.categories);
    }
}
