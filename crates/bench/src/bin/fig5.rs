//! Figure 5: critical ECC memory alerts on Thunderbird — interarrivals
//! look exponential / roughly lognormal: independent physical failures.

use sclog_bench::{banner, HARNESS_SEED};
use sclog_core::figures::fig5;
use sclog_core::Study;
use sclog_stats::Histogram;
use sclog_types::SystemId;

fn main() {
    banner(
        "Figure 5",
        "Critical ECC alerts on Thunderbird",
        "alerts 1.0 (ECC only) / bg 0.00002",
    );
    let run = Study::new(1.0, 0.00002, HARNESS_SEED).run_subset(SystemId::Thunderbird, &["ECC"]);
    let fig = fig5(&run, "ECC").expect("ECC alerts present");
    println!(
        "filtered ECC alerts: {}   interarrival gaps: {}",
        fig.gaps.len() + 1,
        fig.gaps.len()
    );

    let mut h = Histogram::log10(60.0, 3.0e7, 2);
    h.add_all(&fig.gaps);
    println!("\nlog-binned interarrival histogram (seconds):");
    print!("{}", h.to_ascii(40));

    println!("\nmodel fits (AIC-ranked):");
    for m in &fig.fit.models {
        println!(
            "  {:<12} {:<24} logL {:>10.1}  AIC {:>10.1}  KS D={:.3} p={:.3}",
            m.name, m.params, m.log_likelihood, m.aic, m.ks_stat, m.ks_p
        );
    }
    let exp = fig
        .fit
        .models
        .iter()
        .find(|m| m.name == "exponential")
        .unwrap();
    println!(
        "\nexponential is {} at the 1% level (paper: 'these low-level failures\n\
         are basically independent'; distribution 'appears exponential and is\n\
         roughly log normal').",
        if exp.ks_p > 0.01 {
            "NOT rejected"
        } else {
            "rejected"
        }
    );
}
