//! Figure 1: the operational-context state machine. Walks the diagram,
//! prints the transition log (the "few bytes" the paper proposes), the
//! derived RAS metrics, and the disambiguation of the paper's
//! `ciodb exited normally` example.

use sclog_bench::banner;
use sclog_opctx::{ContextLog, Disposition, OpState, RasMetrics};
use sclog_types::{Duration, Timestamp};

fn main() {
    banner(
        "Figure 1",
        "Operational context example",
        "state-machine walk",
    );
    let start = Timestamp::from_ymd_hms(2005, 6, 3, 0, 0, 0);
    let mut ctx = ContextLog::new(start, OpState::ProductionUptime);
    let d = Duration::from_hours(1);
    ctx.transition(start + d * 100, OpState::ScheduledDowntime, "OS upgrade")
        .unwrap();
    ctx.transition(
        start + d * 108,
        OpState::ProductionUptime,
        "upgrade complete",
    )
    .unwrap();
    ctx.transition(
        start + d * 400,
        OpState::UnscheduledDowntime,
        "Lustre outage",
    )
    .unwrap();
    ctx.transition(
        start + d * 406,
        OpState::ProductionUptime,
        "failover complete",
    )
    .unwrap();
    ctx.transition(
        start + d * 500,
        OpState::EngineeringTime,
        "dedicated system test",
    )
    .unwrap();
    ctx.transition(
        start + d * 524,
        OpState::ProductionUptime,
        "returned to users",
    )
    .unwrap();

    println!(
        "Transition log ({} bytes total):",
        ctx.to_log_bodies().len()
    );
    print!("{}", ctx.to_log_bodies());

    let end = start + d * 1000;
    let m = RasMetrics::compute(&ctx, end);
    println!("\nRAS metrics over {} hours:", 1000);
    println!(
        "  production uptime    {:>8.1} h",
        m.production_uptime.as_secs_f64() / 3600.0
    );
    println!(
        "  scheduled downtime   {:>8.1} h",
        m.scheduled_downtime.as_secs_f64() / 3600.0
    );
    println!(
        "  unscheduled downtime {:>8.1} h",
        m.unscheduled_downtime.as_secs_f64() / 3600.0
    );
    println!(
        "  engineering time     {:>8.1} h",
        m.engineering.as_secs_f64() / 3600.0
    );
    println!("  availability                  {:.4}", m.availability());
    println!(
        "  scheduled availability        {:.4}",
        m.scheduled_availability()
    );
    println!(
        "  work lost (131072-proc BG/L)  {:.0} proc-hours",
        m.work_lost_node_hours(131_072)
    );

    println!("\nDisambiguating 'BGLMASTER FAILURE ciodb exited normally with exit code 0':");
    for (label, t) in [
        ("during the OS upgrade", start + d * 104),
        ("during production    ", start + d * 300),
    ] {
        let disp = ctx.classify(t);
        println!(
            "  {label}: {:?} -> {}",
            disp,
            match disp {
                Disposition::MaintenanceArtifact => "harmless artifact of maintenance",
                Disposition::Actionable => "all running jobs were killed; page someone",
                _ => "other",
            }
        );
    }
}
