//! Table 5: BG/L severity distribution among messages and alerts, and
//! the severity-baseline false-positive rate (paper: 59.34%).

use sclog_bench::{banner, compare, HARNESS_SEED};
use sclog_core::tables::SeverityTable;
use sclog_core::Study;
use sclog_types::SystemId;

fn main() {
    banner("Table 5", "BG/L severity vs expert alerts", "uniform 0.02");
    let run = Study::new(0.02, 0.02, HARNESS_SEED).run_system(SystemId::BlueGeneL);
    let table = SeverityTable::table5(&run);
    println!("{}", table.render());
    let fp = table.baseline_false_positive_rate(&["FATAL", "FAILURE"]);
    compare("FATAL/FAILURE baseline FP rate (%)", 59.34, fp * 100.0);
    let fatal_share = table
        .rows
        .iter()
        .find(|r| r.0 == "FATAL")
        .map(|r| r.2 as f64 / table.alert_total().max(1) as f64)
        .unwrap_or(0.0);
    compare("FATAL share of alerts (%)", 99.98, fatal_share * 100.0);
}
