//! Figure 6: log distribution of filtered interarrival times — bimodal
//! on BG/L (correlated categories), unimodal on Spirit.

use sclog_bench::{banner, HARNESS_SEED};
use sclog_core::figures::fig6;
use sclog_core::Study;
use sclog_types::SystemId;

fn main() {
    banner(
        "Figure 6",
        "Filtered interarrival distributions",
        "BG/L 0.3 / Spirit PBS+GM 0.5",
    );
    let bgl = Study::new(0.3, 0.0002, HARNESS_SEED).run_system(SystemId::BlueGeneL);
    let fig_bgl = fig6(&bgl).expect("BG/L filtered alerts");
    println!("(a) BG/L: {} filtered alerts", bgl.filtered.len());
    print!("{}", fig_bgl.histogram.to_ascii(40));
    println!("peaks detected: {}  (paper: bimodal — 'one of the modes is attributed\nto unfiltered redundancy')\n", fig_bgl.peaks);

    let spirit = Study::new(0.5, 0.0001, HARNESS_SEED).run_subset(
        SystemId::Spirit,
        &[
            "PBS_CHK", "PBS_BFD", "PBS_CON", "GM_LANAI", "GM_MAP", "GM_PAR",
        ],
    );
    let fig_sp = fig6(&spirit).expect("Spirit filtered alerts");
    println!("(b) Spirit: {} filtered alerts", spirit.filtered.len());
    print!("{}", fig_sp.histogram.to_ascii(40));
    println!(
        "peaks detected: {}  (paper: unimodal after filtering)",
        fig_sp.peaks
    );
}
