//! Section 4's recommendation, made concrete: per-category thresholds
//! beat any single global threshold.

use sclog_bench::{banner, HARNESS_SEED};
use sclog_core::Study;
use sclog_filter::{score, AdaptiveFilter, AlertFilter, SpatioTemporalFilter};
use sclog_types::{Duration, SystemId};

fn main() {
    banner(
        "§4 ablation",
        "Global vs per-category filtering thresholds",
        "uniform 0.002",
    );
    let study = Study::new(0.002, 0.0002, HARNESS_SEED);
    let run = study.run_system(SystemId::Spirit);
    let raw = &run.tagged.alerts;
    println!("Spirit: {} raw alerts\n", raw.len());
    println!(
        "{:<22} {:>8} {:>10} {:>8} {:>10}",
        "filter", "kept", "coverage", "lost", "residual"
    );
    for t in [1i64, 5, 30, 120, 600] {
        let f = SpatioTemporalFilter::new(Duration::from_secs(t));
        let kept = f.filter(raw);
        let s = score(raw, &kept);
        println!(
            "{:<22} {:>8} {:>10.4} {:>8} {:>10}",
            format!("global T={t}s"),
            s.kept,
            s.coverage(),
            s.lost,
            s.residual_redundancy
        );
    }
    // The learned threshold's floor must exceed syslog's one-second
    // timestamp granularity: at T = 1 s a multi-hour disk storm leaks
    // one "novel" alert per second, because recorded gaps are never in
    // (0, 1).
    let learned = AdaptiveFilter::learn(
        raw,
        0.8,
        Duration::from_secs(5),
        Duration::from_secs(2),
        Duration::from_secs(600),
    );
    let kept = learned.filter(raw);
    let s = score(raw, &kept);
    println!(
        "{:<22} {:>8} {:>10.4} {:>8} {:>10}",
        "learned per-category",
        s.kept,
        s.coverage(),
        s.lost,
        s.residual_redundancy
    );
    println!(
        "\npaper: 'each alert category may require a different threshold, which\n\
         may change over time' — the learned per-category filter should match\n\
         the best global threshold's residual redundancy without sacrificing\n\
         coverage."
    );

    // Part 2: the crossover the paper predicts. Category A repeats its
    // redundant messages every ~9 s (slow chatter, like the PBS bug's
    // task_check retries); category B has *independent failures* only
    // ~9 s apart during an episode. No global threshold handles both:
    // T < 9 s under-merges A, T > 9 s over-merges B.
    println!("\n--- crossover: slow-chatter category A vs rapid-failure category B ---");
    let mut alerts = Vec::new();
    let cat_a = sclog_types::CategoryId::from_index(1000);
    let cat_b = sclog_types::CategoryId::from_index(1001);
    let mut idx = 0usize;
    let mut fid = 0u64;
    for failure in 0..40i64 {
        fid += 1;
        for k in 0..12i64 {
            alerts.push(
                sclog_types::Alert::new(
                    sclog_types::Timestamp::from_secs(failure * 3600 + k * 9),
                    sclog_types::NodeId::from_index(0),
                    cat_a,
                    idx,
                )
                .with_failure(sclog_types::FailureId(fid)),
            );
            idx += 1;
        }
    }
    for episode in 0..40i64 {
        for k in 0..12i64 {
            fid += 1;
            alerts.push(
                sclog_types::Alert::new(
                    sclog_types::Timestamp::from_secs(1800 + episode * 3600 + k * 9),
                    sclog_types::NodeId::from_index(1),
                    cat_b,
                    idx,
                )
                .with_failure(sclog_types::FailureId(fid)),
            );
            idx += 1;
        }
    }
    alerts.sort_by_key(|a| (a.time, a.message_index));
    println!(
        "{:<22} {:>8} {:>10} {:>8} {:>10}",
        "filter", "kept", "coverage", "lost", "residual"
    );
    for t in [5i64, 20] {
        let f = SpatioTemporalFilter::new(Duration::from_secs(t));
        let s = score(&alerts, &f.filter(&alerts));
        println!(
            "{:<22} {:>8} {:>10.4} {:>8} {:>10}",
            format!("global T={t}s"),
            s.kept,
            s.coverage(),
            s.lost,
            s.residual_redundancy
        );
    }
    let per_cat = AdaptiveFilter::new(Duration::from_secs(5))
        .with_threshold(cat_a, Duration::from_secs(20))
        .with_threshold(cat_b, Duration::from_secs(5));
    let s = score(&alerts, &per_cat.filter(&alerts));
    println!(
        "{:<22} {:>8} {:>10.4} {:>8} {:>10}",
        "per-category",
        s.kept,
        s.coverage(),
        s.lost,
        s.residual_redundancy
    );
    println!(
        "\nglobal T=5s leaves category A's chatter unmerged (residual); global\n\
         T=20s erases category B's distinct failures (lost); the per-category\n\
         filter achieves both zero residual and zero lost."
    );
}
