//! Run report: a small Spirit-profile study with observability on.
//!
//! Emits the `sclog.obs.v1` JSON report on stdout and the human
//! waterfall on stderr, so `obs_report > report.json` captures the
//! machine-readable half while the terminal still shows the summary.
//!
//! With `--check`, additionally validates the report — JSON
//! well-formedness via `sclog_types::json::validate`, presence of the
//! keys the schema promises, span coverage of at least 95% of recorded
//! thread time, and every bounded gauge's peak within its bound — and
//! exits nonzero on any failure. `scripts/verify.sh --obs-smoke` runs
//! this mode.

use sclog_bench::HARNESS_SEED;
use sclog_core::{ObsConfig, Study};
use sclog_obs::render;
use sclog_types::json::validate;
use sclog_types::{ObsReport, SystemId};
use std::process::ExitCode;

/// Counters the instrumented pipeline always registers; `--check`
/// fails if any is missing from the report.
const REQUIRED_COUNTERS: &[&str] = &[
    "tagger.lines",
    "tagger.bytes",
    "tagger.prefilter.gated_out",
    "tagger.prefilter.vm_execs",
    "tagger.prefilter.matches",
    "filter.alerts_in",
    "filter.alerts_kept",
    "simgen.messages",
    "simgen.failures",
];

/// Stages the study pipeline always runs.
const REQUIRED_STAGES: &[&str] = &["produce", "tag", "filter"];

/// Minimum fraction of recorded thread time the spans must attribute.
const MIN_COVERAGE: f64 = 0.95;

fn check(report: &ObsReport, json: &str) -> Result<(), String> {
    validate(json).map_err(|e| format!("report JSON does not parse: {e}"))?;
    if !json.contains("\"schema\":\"sclog.obs.v1\"") {
        return Err("schema tag sclog.obs.v1 missing".into());
    }
    for name in REQUIRED_COUNTERS {
        if report.counter(name).is_none() {
            return Err(format!("required counter {name} missing"));
        }
    }
    for name in REQUIRED_STAGES {
        if report.stage(name).is_none() {
            return Err(format!("required stage {name} missing"));
        }
    }
    if report.gauge("pipeline.in_flight_batches").is_none() {
        return Err("gauge pipeline.in_flight_batches missing".into());
    }
    for g in &report.gauges {
        if let Some(bound) = g.bound {
            if g.peak > bound {
                return Err(format!(
                    "gauge {} peak {} exceeds bound {bound}",
                    g.name, g.peak
                ));
            }
        }
        if g.current != 0 {
            return Err(format!(
                "gauge {} not drained: current {}",
                g.name, g.current
            ));
        }
    }
    if report.coverage < MIN_COVERAGE {
        return Err(format!(
            "span coverage {:.3} below required {MIN_COVERAGE}",
            report.coverage
        ));
    }
    if report.wall_ns == 0 || report.attributed_ns == 0 {
        return Err("report recorded no time".into());
    }
    Ok(())
}

fn main() -> ExitCode {
    let checking = std::env::args().any(|a| a == "--check");
    let run = Study::new(0.02, 0.0005, HARNESS_SEED)
        .threads(2)
        .chunk_size(512)
        .obs(ObsConfig::on())
        .run_system(SystemId::Spirit);
    let report = run.obs.expect("obs was enabled");
    let json = report.to_json();
    println!("{json}");
    eprintln!("{}", render(&report));
    if checking {
        if let Err(why) = check(&report, &json) {
            eprintln!("obs-smoke FAILED: {why}");
            return ExitCode::FAILURE;
        }
        eprintln!(
            "obs-smoke OK: {} stages, {} counters, coverage {:.1}%",
            report.stages.len(),
            report.counters.len(),
            report.coverage * 100.0
        );
    }
    ExitCode::SUCCESS
}
