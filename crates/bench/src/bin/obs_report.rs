//! Run report: a small Spirit-profile study with observability on.
//!
//! Emits the `sclog.obs.v1` JSON report on stdout and the human
//! waterfall on stderr, so `obs_report > report.json` captures the
//! machine-readable half while the terminal still shows the summary.
//!
//! With `--check`, additionally validates the report — JSON
//! well-formedness via `sclog_types::json::validate`, presence of the
//! keys the schema promises, span coverage of at least 95% of recorded
//! thread time, and every bounded gauge's peak within its bound — and
//! exits nonzero on any failure. The same mode validates the PR 10
//! trace layer: `sclog.trace.v1` serialization keys and the delta
//! invariant (the delta of identical snapshots is all-zero).
//! `scripts/verify.sh --obs-smoke` runs this mode.

use sclog_bench::HARNESS_SEED;
use sclog_core::{ObsConfig, Study};
use sclog_obs::{render, History, Recorder, TraceScope};
use sclog_types::json::validate;
use sclog_types::{ObsReport, QueryLogReport, QueryTrace, ScanStats, SystemId};
use std::process::ExitCode;

/// Counters the instrumented pipeline always registers; `--check`
/// fails if any is missing from the report.
const REQUIRED_COUNTERS: &[&str] = &[
    "tagger.lines",
    "tagger.bytes",
    "tagger.prefilter.gated_out",
    "tagger.prefilter.vm_execs",
    "tagger.prefilter.matches",
    "tagger.vm.eligible",
    "tagger.dfa.execs",
    "tagger.dfa.bailouts",
    "tagger.dfa.cache_evictions",
    "filter.alerts_in",
    "filter.alerts_kept",
    "simgen.messages",
    "simgen.failures",
];

/// Stages the study pipeline always runs.
const REQUIRED_STAGES: &[&str] = &["produce", "tag", "filter"];

/// Minimum fraction of recorded thread time the spans must attribute.
const MIN_COVERAGE: f64 = 0.95;

fn check(report: &ObsReport, json: &str) -> Result<(), String> {
    validate(json).map_err(|e| format!("report JSON does not parse: {e}"))?;
    if !json.contains("\"schema\":\"sclog.obs.v1\"") {
        return Err("schema tag sclog.obs.v1 missing".into());
    }
    for name in REQUIRED_COUNTERS {
        if report.counter(name).is_none() {
            return Err(format!("required counter {name} missing"));
        }
    }
    for name in REQUIRED_STAGES {
        if report.stage(name).is_none() {
            return Err(format!("required stage {name} missing"));
        }
    }
    if report.gauge("pipeline.in_flight_batches").is_none() {
        return Err("gauge pipeline.in_flight_batches missing".into());
    }
    for g in &report.gauges {
        if let Some(bound) = g.bound {
            if g.peak > bound {
                return Err(format!(
                    "gauge {} peak {} exceeds bound {bound}",
                    g.name, g.peak
                ));
            }
        }
        if g.current != 0 {
            return Err(format!(
                "gauge {} not drained: current {}",
                g.name, g.current
            ));
        }
    }
    if report.coverage < MIN_COVERAGE {
        return Err(format!(
            "span coverage {:.3} below required {MIN_COVERAGE}",
            report.coverage
        ));
    }
    if report.wall_ns == 0 || report.attributed_ns == 0 {
        return Err("report recorded no time".into());
    }
    check_dfa_accounting(report)?;
    Ok(())
}

/// The three-tier engine's books must balance: every VM-eligible regex
/// execution resolved in the lazy DFA or bailed out to the Pike VM.
fn check_dfa_accounting(report: &ObsReport) -> Result<(), String> {
    let get = |name: &str| {
        report
            .counter(name)
            .ok_or_else(|| format!("required counter {name} missing"))
    };
    let eligible = get("tagger.vm.eligible")?;
    let execs = get("tagger.dfa.execs")?;
    let bailouts = get("tagger.dfa.bailouts")?;
    if eligible != execs + bailouts {
        return Err(format!(
            "dfa accounting broken: eligible {eligible} != execs {execs} + bailouts {bailouts}"
        ));
    }
    Ok(())
}

/// The study pipeline never touches a `LineChunker`, so the chunker's
/// SWAR counter is validated on a small instrumented text-ingest run
/// (both serial and pooled arms). Nothing is printed on success —
/// stdout stays a single JSON report.
fn check_ingest_swar() -> Result<(), String> {
    let text = sclog_simgen::generate(
        SystemId::Spirit,
        sclog_simgen::Scale::new(0.02, 0.0005),
        HARNESS_SEED,
    )
    .render();
    let mut registry = sclog_types::CategoryRegistry::new();
    let rules = sclog_rules::RuleSet::builtin(SystemId::Spirit, &mut registry);
    let filter = sclog_filter::SpatioTemporalFilter::paper();
    for threads in [1, 2] {
        let config = sclog_core::IngestConfig {
            threads,
            chunk_bytes: 1024,
            text_queue: 2,
            obs: ObsConfig::on(),
        };
        let run = sclog_core::pipeline::ingest_stream(
            SystemId::Spirit,
            text.as_bytes(),
            &rules,
            &filter,
            config,
        )
        .map_err(|e| format!("ingest_stream failed: {e}"))?;
        let report = run.obs.ok_or("ingest run lost its obs report")?;
        let swar = report
            .counter("chunker.swar_blocks")
            .ok_or("required counter chunker.swar_blocks missing")?;
        if swar == 0 {
            return Err(format!(
                "chunker.swar_blocks is zero on a {}-line ingest (threads={threads})",
                report.counter("tagger.lines").unwrap_or(0)
            ));
        }
        check_dfa_accounting(&report).map_err(|e| format!("ingest (threads={threads}): {e}"))?;
    }
    Ok(())
}

/// Requires every zero-able field of a delta report to actually be
/// zero — the invariant `snap.delta(&snap) == 0` the trace layer
/// promises. Gauges are instantaneous readings, not rates, so they are
/// exempt by design.
fn require_zero_delta(delta: &ObsReport) -> Result<(), String> {
    if delta.wall_ns != 0 || delta.attributed_ns != 0 {
        return Err(format!(
            "self-delta recorded time: wall {} attributed {}",
            delta.wall_ns, delta.attributed_ns
        ));
    }
    for c in &delta.counters {
        if c.value != 0 {
            return Err(format!("self-delta counter {} is {}", c.name, c.value));
        }
    }
    for h in &delta.histograms {
        if h.count != 0 || h.sum != 0 || !h.buckets.is_empty() {
            return Err(format!("self-delta histogram {} not empty", h.name));
        }
    }
    for s in &delta.stages {
        if s.busy_ns != 0 || s.wait_ns != 0 || s.items != 0 || s.bytes != 0 {
            return Err(format!("self-delta stage {} not zero", s.name));
        }
    }
    Ok(())
}

/// The PR 10 trace layer: `TraceScope` deltas, the self-delta zero
/// invariant, and the `sclog.trace.v1` serialization of both report
/// shapes. Runs on a private recorder; nothing is printed on success.
fn check_trace() -> Result<(), String> {
    let rec = Recorder::new();
    let writes = rec.counter("trace_check.writes");
    let tr = rec.thread("trace-check");

    let scope = TraceScope::begin(&rec);
    tr.add(writes, 3);
    let delta = scope.finish();
    if delta.counter("trace_check.writes") != Some(3) {
        return Err(format!(
            "TraceScope delta saw {:?} writes, want 3",
            delta.counter("trace_check.writes")
        ));
    }

    let snap = rec.snapshot();
    require_zero_delta(&snap.delta(&snap))?;

    let mut history = History::new(4);
    history.record(rec.snapshot());
    tr.add(writes, 1);
    history.record(rec.snapshot());
    let timeline = history.timeline().to_json();
    validate(&timeline).map_err(|e| format!("timeline JSON does not parse: {e}"))?;
    for key in [
        "\"schema\":\"sclog.trace.v1\"",
        "\"samples\"",
        "\"at_ns\"",
        "\"delta\"",
    ] {
        if !timeline.contains(key) {
            return Err(format!("timeline report missing {key}"));
        }
    }

    let qlog = QueryLogReport {
        logged: 1,
        queries: vec![QueryTrace {
            trace_id: 7,
            endpoint: "/alerts".to_owned(),
            query: "limit=1".to_owned(),
            micros: 42,
            status: 200,
            scan: Some(ScanStats {
                rows_decoded: 5,
                ..ScanStats::default()
            }),
        }],
    };
    let qlog = qlog.to_json();
    validate(&qlog).map_err(|e| format!("query-log JSON does not parse: {e}"))?;
    for key in [
        "\"schema\":\"sclog.trace.v1\"",
        "\"logged\"",
        "\"queries\"",
        "\"trace_id\"",
        "\"endpoint\"",
        "\"query\"",
        "\"micros\"",
        "\"status\"",
        "\"scan\"",
        "\"rows_decoded\":5",
    ] {
        if !qlog.contains(key) {
            return Err(format!("query-log report missing {key}"));
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let checking = std::env::args().any(|a| a == "--check");
    let run = Study::new(0.02, 0.0005, HARNESS_SEED)
        .threads(2)
        .chunk_size(512)
        .obs(ObsConfig::on())
        .run_system(SystemId::Spirit);
    let report = run.obs.expect("obs was enabled");
    let json = report.to_json();
    println!("{json}");
    eprintln!("{}", render(&report));
    if checking {
        if let Err(why) = check(&report, &json)
            .and_then(|()| check_ingest_swar())
            .and_then(|()| check_trace())
        {
            eprintln!("obs-smoke FAILED: {why}");
            return ExitCode::FAILURE;
        }
        eprintln!(
            "obs-smoke OK: {} stages, {} counters, coverage {:.1}%",
            report.stages.len(),
            report.counters.len(),
            report.coverage * 100.0
        );
    }
    ExitCode::SUCCESS
}
