//! Figure 4: categorized filtered alerts on Liberty over time — the
//! PBS-bug horizontal clusters.

use sclog_bench::{banner, HARNESS_SEED};
use sclog_core::figures::fig4;
use sclog_core::Study;
use sclog_types::SystemId;

fn main() {
    banner(
        "Figure 4",
        "Categorized filtered alerts on Liberty",
        "alerts 1.0 / bg 0.00005",
    );
    let run = Study::new(1.0, 0.00005, HARNESS_SEED).run_system(SystemId::Liberty);
    let points = fig4(&run);
    let spec = SystemId::Liberty.spec();
    let span = spec.span().as_secs_f64();

    // Render one row per category: 100 time columns, '#' where alerts.
    let mut cats: Vec<_> = run.registry.for_system(SystemId::Liberty).collect();
    cats.sort_by_key(|(id, _)| *id);
    println!("filtered alerts over the observation window (100 columns = {span:.0}s):");
    for (cat, def) in cats {
        let mut row = vec![b'.'; 100];
        let mut count = 0;
        for (t, c) in &points {
            if *c == cat {
                let f = (*t - spec.start()).as_secs_f64() / span;
                let col = ((f * 100.0) as usize).min(99);
                row[col] = b'#';
                count += 1;
            }
        }
        println!(
            "  {:<9} {:>5}  {}",
            def.name,
            count,
            String::from_utf8_lossy(&row)
        );
    }
    println!(
        "\npaper: the PBS_CHK/PBS_BFD horizontal clusters 'are not evidence of\n\
         poor filtering; they are actually instances of individual failures'\n\
         from the PBS bug (Section 3.3.1); correlated categories land in the\n\
         same window."
    );
}
