//! Section 3.3.2's filter comparison, now with ground truth: the
//! simultaneous filter removes cross-source redundancy the serial
//! filter misses, at the cost of at most ~one true positive.

use sclog_bench::{banner, HARNESS_SEED};
use sclog_core::Study;
use sclog_filter::{compare, score, AlertFilter, SerialFilter, SpatioTemporalFilter, TupleFilter};
use sclog_types::{SystemId, ALL_SYSTEMS};

fn main() {
    banner(
        "§3.3.2",
        "Serial vs simultaneous filtering, scored against ground truth",
        "uniform 0.002",
    );
    let study = Study::new(0.002, 0.0002, HARNESS_SEED);
    for &sys in &ALL_SYSTEMS {
        let run = study.run_system(sys);
        let raw = &run.tagged.alerts;
        let simul = SpatioTemporalFilter::paper().filter(raw);
        let serial = SerialFilter::paper().filter(raw);
        let tuple = TupleFilter::paper().filter(raw);
        let s_sim = score(raw, &simul);
        let s_ser = score(raw, &serial);
        let s_tup = score(raw, &tuple);
        let diff = compare(&serial, &simul);
        println!(
            "\n{sys}: {} raw alerts, {} ground-truth failures",
            raw.len(),
            s_sim.failures
        );
        println!(
            "  simultaneous: kept {:>6}  coverage {:.4}  lost {:>3}  residual {:>5}",
            s_sim.kept,
            s_sim.coverage(),
            s_sim.lost,
            s_sim.residual_redundancy
        );
        println!(
            "  serial      : kept {:>6}  coverage {:.4}  lost {:>3}  residual {:>5}",
            s_ser.kept,
            s_ser.coverage(),
            s_ser.lost,
            s_ser.residual_redundancy
        );
        println!(
            "  tuple       : kept {:>6}  coverage {:.4}  lost {:>3}  residual {:>5}",
            s_tup.kept,
            s_tup.coverage(),
            s_tup.lost,
            s_tup.residual_redundancy
        );
        println!(
            "  serial-only keeps {:>5} alerts (false positives the simultaneous\n\
             \u{20}  filter removes); simultaneous-only keeps {}; extra failures lost\n\
             \u{20}  by simultaneous vs serial: {}",
            diff.only_first.len(),
            diff.only_second.len(),
            s_sim.lost.saturating_sub(s_ser.lost),
        );
    }
    println!(
        "\npaper: 'at most one true positive was removed on any single machine,\n\
         whereas sometimes dozens of false positives were removed by using our\n\
         filter instead of the serial algorithm.'"
    );
    let _ = SystemId::Liberty;
}
