//! Table 4: per-category raw and filtered alert counts for every
//! system, with example message bodies.

use sclog_bench::{alert_table_study, banner, ALERT_TABLE_SCALE};
use sclog_core::tables::Table4;
use sclog_rules::catalog;

fn main() {
    banner(
        "Table 4",
        "Alert categories per system",
        &format!("alerts {ALERT_TABLE_SCALE} / bg 0.0005"),
    );
    let runs = alert_table_study().run_all();
    for run in &runs {
        let table = Table4::build(run);
        println!("{}", table.render());
        // Rank correlation against the paper's ordering: the most
        // common categories should stay the most common.
        let paper_order: Vec<&str> = {
            let mut specs: Vec<_> = catalog(run.system).iter().collect();
            specs.sort_by_key(|s| std::cmp::Reverse(s.raw_count));
            specs.iter().map(|s| s.name).take(5).collect()
        };
        let measured_order: Vec<&str> = table
            .rows
            .iter()
            .take(5)
            .map(|r| {
                catalog(run.system)
                    .iter()
                    .find(|s| s.name == r.1)
                    .map(|s| s.name)
                    .unwrap_or("?")
            })
            .collect();
        let agree = paper_order
            .iter()
            .filter(|n| measured_order.contains(n))
            .count();
        println!(
            "top-5 raw categories overlap with paper: {agree}/5 ({:?})\n",
            measured_order
        );
    }
}
