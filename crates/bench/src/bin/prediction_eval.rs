//! The paper's prediction recommendation, evaluated: per-category
//! predictors and their ensemble, scored with ground-truth failures.

use sclog_bench::{banner, HARNESS_SEED};
use sclog_core::Study;
use sclog_predict::{
    evaluate, failure_onsets, mine_precursors, Ensemble, PrecursorPredictor, Predictor,
    RateThresholdPredictor,
};
use sclog_types::{Duration, SystemId};

fn main() {
    banner(
        "§4/§5",
        "Ensemble failure prediction on Liberty",
        "alerts 1.0 / bg 0.00005",
    );
    let run = Study::new(1.0, 0.00005, HARNESS_SEED).run_system(SystemId::Liberty);
    let alerts = &run.tagged.alerts;
    let horizon = Duration::from_hours(4);

    // Mine precursor structure from the alert stream itself.
    println!("mined precursor rules (window 30 min, lift > 3):");
    let rules = mine_precursors(alerts, Duration::from_mins(30), 3, 3.0);
    for r in rules.iter().take(6) {
        println!(
            "  {} -> {}  confidence {:.2}  lift {:>8.1}  support {}",
            run.registry.name(r.precursor),
            run.registry.name(r.target),
            r.confidence,
            r.lift,
            r.support
        );
    }

    // Target: GM_LANAI failures, predicted three ways.
    let target = run
        .registry
        .lookup(SystemId::Liberty, "GM_LANAI")
        .expect("category");
    let gm_par = run
        .registry
        .lookup(SystemId::Liberty, "GM_PAR")
        .expect("category");
    let failures = failure_onsets(alerts, target);
    println!(
        "\ntarget: GM_LANAI ({} failures), horizon {}h",
        failures.len(),
        4
    );

    let rate_all = RateThresholdPredictor::new(None, Duration::from_mins(30), 5);
    let precursor = PrecursorPredictor::new(gm_par);
    let ensemble = Ensemble::new()
        .with(RateThresholdPredictor::new(
            None,
            Duration::from_mins(30),
            5,
        ))
        .with(PrecursorPredictor::new(gm_par));

    for p in [&rate_all as &dyn Predictor, &precursor, &ensemble] {
        let warnings = p.warnings(alerts);
        let s = evaluate(&warnings, &failures, horizon);
        println!("  {:<24} {}", p.name(), s);
    }
    println!(
        "\npaper: 'predictors should specialize in sets of failures with similar\n\
         predictive behaviors' — the specialized precursor predictor should\n\
         dominate the generic rate detector on this category."
    );
}
