//! Figure 3: the GM_PAR / GM_LANAI relationship on Liberty — clearly
//! correlated, but neither always follows the other.

use sclog_bench::{banner, sparkline, HARNESS_SEED};
use sclog_core::figures::fig3;
use sclog_core::Study;
use sclog_types::{Duration, SystemId};

fn main() {
    banner(
        "Figure 3",
        "Two related classes of alerts on Liberty",
        "alerts 1.0 / bg 0.00005",
    );
    let run = Study::new(1.0, 0.00005, HARNESS_SEED).run_system(SystemId::Liberty);
    let fig =
        fig3(&run, "GM_PAR", "GM_LANAI", Duration::from_days(7)).expect("both categories present");
    println!("weekly counts:");
    println!("  GM_PAR   {}", sparkline(&fig.series_a));
    println!("  GM_LANAI {}", sparkline(&fig.series_b));
    let (lag, corr) = fig.best;
    println!("\nbest cross-correlation: r = {corr:.3} at lag {lag} weeks");
    let a_total: f64 = fig.series_a.iter().sum();
    let b_total: f64 = fig.series_b.iter().sum();
    println!("GM_PAR alerts: {a_total}   GM_LANAI alerts: {b_total}");
    println!(
        "\npaper: 'GM_LANAI messages do not always follow GM_PAR messages, nor\n\
         vice versa. However, the correlation is clear.'"
    );
}
