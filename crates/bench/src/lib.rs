//! Shared harness utilities for the table/figure reproduction
//! binaries.
//!
//! Every binary prints its experiment id, the scale it ran at, the
//! regenerated rows/series, and — where the paper gives numbers — a
//! paper-vs-measured comparison. EXPERIMENTS.md records one captured
//! run of each.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod timing;

pub use timing::BenchGroup;

use sclog_core::Study;

/// The seed every harness binary uses, so EXPERIMENTS.md is
/// reproducible verbatim.
pub const HARNESS_SEED: u64 = 20_070_625; // DSN 2007, Edinburgh

/// Uniform scale used for the Table 2 reproduction: both alerts and
/// background at 0.2% of the paper's volumes.
pub const TABLE_SCALE: f64 = 0.002;

/// Alert scale for the type-mix tables (3 and 4): 2% keeps the
/// per-category filtered counts above the one-failure clamp so the
/// paper's filtered type shares are visible. Background does not enter
/// those tables, so it stays small.
pub const ALERT_TABLE_SCALE: f64 = 0.02;

/// Background scale accompanying [`ALERT_TABLE_SCALE`].
pub const ALERT_TABLE_BG: f64 = 0.0005;

/// A study at the alert-table scale (Tables 3–4).
pub fn alert_table_study() -> Study {
    Study::new(ALERT_TABLE_SCALE, ALERT_TABLE_BG, HARNESS_SEED)
}

/// Prints the standard experiment banner.
pub fn banner(id: &str, title: &str, scale: &str) {
    println!("================================================================");
    println!("{id}: {title}");
    println!("scale: {scale}   seed: {HARNESS_SEED}");
    println!("================================================================");
}

/// A study at the uniform table scale.
pub fn table_study() -> Study {
    Study::new(TABLE_SCALE, TABLE_SCALE, HARNESS_SEED)
}

/// Prints a paper-vs-measured comparison line with the ratio.
pub fn compare(label: &str, paper: f64, measured: f64) {
    let ratio = if paper != 0.0 {
        measured / paper
    } else {
        f64::NAN
    };
    println!("{label:<40} paper {paper:>14.2}   measured {measured:>14.2}   ratio {ratio:>6.3}");
}

/// Formats a scaled paper count (paper value × scale) for comparison
/// against a measured count.
pub fn scaled(paper: u64, scale: f64) -> f64 {
    paper as f64 * scale
}

/// Renders a sparkline of a numeric series using eight block levels.
pub fn sparkline(values: &[f64]) -> String {
    const BLOCKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().copied().fold(f64::MIN, f64::max);
    let min = values.iter().copied().fold(f64::MAX, f64::min);
    if values.is_empty() || max <= min {
        return "▁".repeat(values.len());
    }
    values
        .iter()
        .map(|v| {
            let f = (v - min) / (max - min);
            BLOCKS[((f * 7.0).round() as usize).min(7)]
        })
        .collect()
}

/// Downsamples a series to at most `n` points by averaging buckets —
/// keeps sparkline output terminal-width friendly.
pub fn downsample(values: &[u64], n: usize) -> Vec<f64> {
    if values.is_empty() || n == 0 {
        return Vec::new();
    }
    let chunk = values.len().div_ceil(n);
    values
        .chunks(chunk)
        .map(|c| c.iter().sum::<u64>() as f64 / c.len() as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_shapes() {
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[1.0, 1.0]), "▁▁");
        let s = sparkline(&[0.0, 1.0]);
        assert_eq!(s.chars().count(), 2);
        assert!(s.ends_with('█'));
    }

    #[test]
    fn downsample_preserves_mean() {
        let v: Vec<u64> = (0..100).collect();
        let d = downsample(&v, 10);
        assert_eq!(d.len(), 10);
        let mean: f64 = d.iter().sum::<f64>() / d.len() as f64;
        assert!((mean - 49.5).abs() < 1.0);
        assert!(downsample(&[], 5).is_empty());
    }

    #[test]
    fn scaled_multiplies() {
        assert_eq!(scaled(1000, 0.002), 2.0);
    }
}
