//! Wall-clock benchmark for the on-disk segment store behind sclogd:
//! append throughput into WAL-backed partitions, zone-map pruning
//! versus a full scan on a narrow range query, and a cold boot from
//! sealed segments versus re-running simulation and ingest (the boot
//! path `--data` replaces).
//!
//! Emits one JSON record per benchmark on stdout plus two derived
//! records:
//!   {"record":"prune_speedup"}  full-scan / pruned-scan median ratio
//!                               on a one-day, one-system filter over
//!                               a multi-day five-system store
//!   {"record":"cold_boot"}      resimulate / cold-boot median ratio —
//!                               how much faster a daemon boots from
//!                               disk than from scratch
//! Human-readable summaries go to stderr.

use std::collections::HashSet;
use std::path::{Path, PathBuf};

use sclog_bench::BenchGroup;
use sclog_core::pipeline::ingest_batch;
use sclog_filter::SpatioTemporalFilter;
use sclog_obs::Recorder;
use sclog_rules::RuleSet;
use sclog_simgen::{generate, Scale};
use sclog_store::{ScanFilter, SegmentStore, StoreConfig, StoreMetrics, StoredAlert};
use sclog_types::json::JsonObject;
use sclog_types::{
    AlertType, CategoryId, NodeId, Severity, SyslogSeverity, SystemId, Timestamp, ALL_SYSTEMS,
};

const DAY_MICROS: i64 = 86_400_000_000;
/// Days of synthetic history per system.
const DAYS: i64 = 16;
/// Synthetic records per (system, day) partition.
const PER_DAY: usize = 300;

/// Deterministic splitmix64 so the synthetic store is identical on
/// every run and host.
struct Rng(u64);

impl Rng {
    fn next(&mut self, bound: u64) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (z ^ (z >> 31)) % bound
    }
}

/// A multi-day, multi-system batch of synthetic alerts plus the
/// catalog ids they reference, generated against `store`'s catalog.
fn synthetic_records(store: &mut SegmentStore, rng: &mut Rng) -> Vec<StoredAlert> {
    let hosts: Vec<NodeId> = (0..64)
        .map(|i| store.intern_host(&format!("node-{i:03}")))
        .collect();
    let mut categories: Vec<CategoryId> = Vec::new();
    for system in ALL_SYSTEMS {
        for (i, class) in [AlertType::Hardware, AlertType::Software]
            .iter()
            .enumerate()
        {
            categories.push(store.register_category(
                &format!("{}_CAT_{i}", sclog_types::segment::system_slug(system)),
                system,
                *class,
            ));
        }
    }
    let cats_per_system = categories.len() / ALL_SYSTEMS.len();

    let mut records = Vec::with_capacity(ALL_SYSTEMS.len() * DAYS as usize * PER_DAY);
    for (s, _) in ALL_SYSTEMS.iter().enumerate() {
        for day in 0..DAYS {
            for i in 0..PER_DAY {
                let category = categories[s * cats_per_system + rng.next(2) as usize];
                records.push(StoredAlert {
                    time: Timestamp::from_micros(
                        day * DAY_MICROS + rng.next(DAY_MICROS as u64) as i64,
                    ),
                    host: hosts[rng.next(hosts.len() as u64) as usize],
                    category,
                    severity: match rng.next(3) {
                        0 => Severity::None,
                        1 => Severity::Syslog(SyslogSeverity::Error),
                        _ => Severity::Syslog(SyslogSeverity::Warning),
                    },
                    message_index: i,
                    filtered: rng.next(2) == 0,
                    seq: 0,
                });
            }
        }
    }
    records
}

fn bench_dir(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("sclog-store-bench-{}-{name}", std::process::id()))
}

fn fresh(root: &Path) -> SegmentStore {
    let _ = std::fs::remove_dir_all(root);
    SegmentStore::open(
        root,
        StoreConfig {
            // Payload caching off: scans measure real decode work, not
            // a warm in-memory copy — the regime a freshly booted
            // daemon is in.
            cache_payloads: false,
            ..StoreConfig::default()
        },
    )
    .expect("open bench store")
}

fn main() {
    let rec = Recorder::disabled().thread("bench");
    let metrics = StoreMetrics::disabled();

    // ---------------------------------------------------------- append
    let mut rng = Rng(7);
    let seed_root = bench_dir("seed");
    let mut seed_store = fresh(&seed_root);
    let records = synthetic_records(&mut seed_store, &mut rng);

    let mut group = BenchGroup::new("store");
    group
        .sample_size(10)
        .throughput_elements(records.len() as u64);
    let append_root = bench_dir("append");
    group.bench("append_fresh_store", || {
        let mut store = fresh(&append_root);
        let recs = synthetic_records(&mut store, &mut Rng(7));
        store.append(&recs, &rec, &metrics).expect("append");
        store.record_count()
    });
    let _ = std::fs::remove_dir_all(&append_root);

    // ---------------------------------------------- pruned vs full scan
    // One sealed, compacted store; the query asks for one day of one
    // system out of DAYS days and five systems, so zone maps can skip
    // almost every segment while the full scan decodes them all.
    seed_store.append(&records, &rec, &metrics).expect("append");
    seed_store.seal_all(&rec, &metrics).expect("seal");
    seed_store.compact(&rec, &metrics).expect("compact");
    let narrow = ScanFilter {
        from: Some(Timestamp::from_micros(3 * DAY_MICROS)),
        to: Some(Timestamp::from_micros(4 * DAY_MICROS - 1)),
        system: Some(SystemId::Spirit),
        ..ScanFilter::all()
    };
    let (pruned_hits, _) = seed_store
        .scan(&narrow, true, &rec, &metrics)
        .expect("pruned scan");
    let (full_hits, _) = seed_store
        .scan(&narrow, false, &rec, &metrics)
        .expect("full scan");
    assert_eq!(pruned_hits, full_hits, "pruning may never change answers");
    assert!(
        !pruned_hits.is_empty(),
        "narrow window must match something"
    );

    let (pruned_ns, full_ns) = group.bench_pair(
        "scan_pruned",
        || {
            seed_store
                .scan(&narrow, true, &rec, &metrics)
                .expect("scan")
        },
        "scan_full",
        || {
            seed_store
                .scan(&narrow, false, &rec, &metrics)
                .expect("scan")
        },
    );
    let mut speedup = JsonObject::new();
    speedup
        .str("record", "prune_speedup")
        .uint("store_records", seed_store.record_count())
        .uint("store_segments", seed_store.segment_count() as u64)
        .uint("window_hits", pruned_hits.len() as u64)
        .uint("pruned_median_ns", pruned_ns as u64)
        .uint("full_median_ns", full_ns as u64)
        .num("speedup", full_ns as f64 / pruned_ns.max(1) as f64);
    println!("{}", speedup.finish());
    eprintln!(
        "store/prune_speedup: {:.1}x ({} hits out of {} records)",
        full_ns as f64 / pruned_ns.max(1) as f64,
        pruned_hits.len(),
        seed_store.record_count(),
    );
    drop(seed_store);
    let _ = std::fs::remove_dir_all(&seed_root);

    // ------------------------------------- cold boot vs re-simulation
    // The store is loaded from a real ingest run (simulate, render,
    // parse, tag, filter — the work a daemon without `--data` repeats
    // at every boot), then sealed. Cold boot replays none of it: open
    // the directory and scan.
    let scale = Scale::new(0.002, 0.002);
    let seed = 7;
    let resimulate = || {
        let log = generate(SystemId::BlueGeneL, scale, seed);
        let text = log.render();
        let mut registry = sclog_types::CategoryRegistry::new();
        let rules = RuleSet::builtin(SystemId::BlueGeneL, &mut registry);
        let filter = SpatioTemporalFilter::paper();
        let result = ingest_batch(SystemId::BlueGeneL, &text, &rules, &filter, 1);
        (result, registry)
    };
    let (result, registry) = resimulate();
    let boot_root = bench_dir("boot");
    let mut boot_store = fresh(&boot_root);
    let survivors: HashSet<usize> = result.filtered.iter().map(|a| a.message_index).collect();
    let stored: Vec<StoredAlert> = result
        .tagged
        .alerts
        .iter()
        .map(|alert| {
            let def = registry.def(alert.category);
            StoredAlert {
                time: alert.time,
                host: boot_store.intern_host(result.sources.name(alert.source)),
                category: boot_store.register_category(&def.name, def.system, def.alert_type),
                severity: Severity::None,
                message_index: alert.message_index,
                filtered: survivors.contains(&alert.message_index),
                seq: 0,
            }
        })
        .collect();
    boot_store.append(&stored, &rec, &metrics).expect("append");
    boot_store.seal_all(&rec, &metrics).expect("seal");
    boot_store.compact(&rec, &metrics).expect("compact");
    let alert_count = boot_store.record_count();
    drop(boot_store);

    group.throughput_elements(0);
    let (cold_ns, resim_ns) = group.bench_pair(
        "cold_boot",
        || {
            let store = SegmentStore::open(
                &boot_root,
                StoreConfig {
                    cache_payloads: false,
                    ..StoreConfig::default()
                },
            )
            .expect("open");
            store
                .scan(&ScanFilter::all(), true, &rec, &metrics)
                .expect("scan")
                .0
                .len()
        },
        "resimulate",
        || resimulate().0.tagged.alerts.len(),
    );
    let mut boot = JsonObject::new();
    boot.str("record", "cold_boot")
        .uint("alerts", alert_count)
        .uint("cold_boot_median_ns", cold_ns as u64)
        .uint("resimulate_median_ns", resim_ns as u64)
        .num("speedup", resim_ns as f64 / cold_ns.max(1) as f64);
    println!("{}", boot.finish());
    eprintln!(
        "store/cold_boot: {:.1}x faster than re-simulation ({} alerts)",
        resim_ns as f64 / cold_ns.max(1) as f64,
        alert_count,
    );
    let _ = std::fs::remove_dir_all(&boot_root);
}
