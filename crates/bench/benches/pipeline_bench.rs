//! Wall-clock benchmarks for the ingestion pipeline: parsing and expert
//! tagging throughput on generated Liberty text.
//!
//! Emits one JSON record per benchmark on stdout; human-readable
//! summaries go to stderr.

use sclog_bench::BenchGroup;
use sclog_parse::LogReader;
use sclog_rules::RuleSet;
use sclog_simgen::{generate, Scale};
use sclog_types::{CategoryRegistry, SystemId};

fn main() {
    let log = generate(SystemId::Liberty, Scale::new(0.05, 0.0002), 2);
    let text = log.render();
    let lines = text.lines().count() as u64;

    let mut group = BenchGroup::new("pipeline_liberty");
    group.sample_size(20).throughput_elements(lines);
    group.bench("parse", || {
        let mut reader = LogReader::for_system(SystemId::Liberty);
        reader.push_text(&text);
        reader.stats().parsed
    });

    let mut registry = CategoryRegistry::new();
    let rules = RuleSet::builtin(SystemId::Liberty, &mut registry);
    group.bench("tag_serial", || {
        rules.tag_messages(&log.messages, &log.interner).len()
    });
    group.bench("tag_parallel4", || {
        rules
            .tag_messages_parallel(&log.messages, &log.interner, 4)
            .len()
    });
}
