//! Wall-clock benchmarks for the ingestion pipeline, batch vs
//! streaming, on generated Liberty text.
//!
//! Arms:
//!
//! * `parse` / `parse_reader` — materialized vs chunked-incremental
//!   line parsing.
//! * `ingest_batch` — the three materialized passes `Study::run` used
//!   to make, fed from text: parse everything, render-and-tag
//!   everything, filter everything.
//! * `ingest_stream` — the streaming pipeline: chunked read → parse →
//!   raw-line tagging on a worker pool → in-order filtering, bounded
//!   batches throughout.
//! * `study_batch` / `study_stream` — `Study` end to end (generation
//!   included) through the batch reference and the streaming pipeline.
//!
//! Besides the per-arm timing records, two `meta` JSON records report
//! the batch-vs-streaming speedup and the peak-in-flight memory proxy
//! (messages resident mid-pipeline vs the materialized whole log).
//!
//! Emits one JSON record per benchmark on stdout; human-readable
//! summaries go to stderr.

use sclog_bench::BenchGroup;
use sclog_core::pipeline::{self, IngestConfig};
use sclog_core::{ObsConfig, Study};
use sclog_filter::SpatioTemporalFilter;
use sclog_parse::LogReader;
use sclog_rules::RuleSet;
use sclog_simgen::{generate, Scale};
use sclog_types::json::JsonObject;
use sclog_types::{CategoryRegistry, SystemId};

fn main() {
    let scale = Scale::new(0.05, 0.0002);
    let log = generate(SystemId::Liberty, scale, 2);
    let text = log.render();
    let lines = text.lines().count() as u64;
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get().min(8));

    let mut group = BenchGroup::new("pipeline_liberty");
    group.sample_size(20).throughput_elements(lines);
    group.bench("parse", || {
        let mut reader = LogReader::for_system(SystemId::Liberty);
        reader.push_text(&text);
        reader.stats().parsed
    });
    group.bench("parse_reader", || {
        let mut reader = LogReader::for_system(SystemId::Liberty);
        reader.push_reader(text.as_bytes()).unwrap();
        reader.stats().parsed
    });

    let mut registry = CategoryRegistry::new();
    let rules = RuleSet::builtin(SystemId::Liberty, &mut registry);
    let filter = SpatioTemporalFilter::paper();
    let config = IngestConfig::with_threads(threads);

    // Batch-vs-stream pairs interleave their samples so both arms see
    // the same frequency and allocator drift.
    let (batch_ns, stream_ns) = group.bench_pair(
        "ingest_batch",
        || {
            pipeline::ingest_batch(SystemId::Liberty, &text, &rules, &filter, threads)
                .tagged
                .len()
        },
        "ingest_stream",
        || {
            pipeline::ingest_stream(SystemId::Liberty, text.as_bytes(), &rules, &filter, config)
                .unwrap()
                .tagged
                .len()
        },
    );

    let study = Study::with_scale(scale, 2).threads(threads);
    let (study_batch_ns, study_stream_ns) = group.bench_pair(
        "study_batch",
        || study.run_system_batch(SystemId::Liberty).raw_alerts(),
        "study_stream",
        || study.run_system(SystemId::Liberty).raw_alerts(),
    );

    // Memory proxy: one instrumented run of each streaming path.
    let ingest_run =
        pipeline::ingest_stream(SystemId::Liberty, text.as_bytes(), &rules, &filter, config)
            .unwrap();
    let study_run = study.run_system(SystemId::Liberty);
    let whole_log = study_run.messages() as u64;

    let speedup = batch_ns as f64 / stream_ns as f64;
    let mut rec = JsonObject::new();
    rec.str("name", "pipeline_liberty/meta_ingest")
        .uint("threads", threads as u64)
        .uint("batch_median_ns", batch_ns as u64)
        .uint("stream_median_ns", stream_ns as u64)
        .num("speedup_stream_vs_batch", speedup)
        .uint(
            "stream_peak_in_flight_messages",
            ingest_run.stats.peak_in_flight_messages as u64,
        )
        .uint(
            "stream_peak_in_flight_batches",
            ingest_run.stats.peak_in_flight_batches as u64,
        )
        .uint(
            "stream_in_flight_bound_batches",
            ingest_run.stats.in_flight_bound_batches as u64,
        )
        .uint("batch_peak_in_flight_messages", whole_log);
    println!("{}", rec.finish());
    eprintln!(
        "ingest: stream {speedup:.2}x batch; peak in-flight {} msgs \
         ({}/{} batches) vs whole log {whole_log}",
        ingest_run.stats.peak_in_flight_messages,
        ingest_run.stats.peak_in_flight_batches,
        ingest_run.stats.in_flight_bound_batches,
    );

    let study_speedup = study_batch_ns as f64 / study_stream_ns as f64;
    let stats = study_run.stats;
    let mut rec = JsonObject::new();
    rec.str("name", "pipeline_liberty/meta_study")
        .uint("threads", stats.threads as u64)
        .uint("batch_median_ns", study_batch_ns as u64)
        .uint("stream_median_ns", study_stream_ns as u64)
        .num("speedup_stream_vs_batch", study_speedup)
        .uint(
            "stream_peak_in_flight_messages",
            stats.peak_in_flight_messages as u64,
        )
        .uint(
            "stream_in_flight_bound_messages",
            stats.in_flight_bound_messages.unwrap_or(0) as u64,
        )
        .uint("batch_peak_in_flight_messages", whole_log);
    println!("{}", rec.finish());
    eprintln!(
        "study:  stream {study_speedup:.2}x batch; peak in-flight {} msgs \
         (bound {}) vs whole log {whole_log}",
        stats.peak_in_flight_messages,
        stats.in_flight_bound_messages.unwrap_or(0),
    );
    assert!(
        stats.peak_in_flight_messages <= stats.in_flight_bound_messages.unwrap_or(usize::MAX),
        "study pipeline exceeded its configured in-flight bound"
    );

    // One observed run: the full `sclog.obs.v1` snapshot rides along in
    // the bench file so a timing regression can be read against the
    // stage waterfall that produced it (see scripts/bench.sh for the
    // record's keys).
    let obs_run = study.obs(ObsConfig::on()).run_system(SystemId::Liberty);
    let report = obs_run.obs.expect("obs was enabled");
    let tag_busy_ms = report.stage("tag").map_or(0.0, |s| s.busy_ns as f64 / 1e6);
    let mut rec = JsonObject::new();
    rec.str("record", "obs")
        .str("name", "pipeline_liberty/study_stream_obs")
        .uint("threads", stats.threads as u64)
        .num("coverage", report.coverage)
        .raw("report", &report.to_json());
    println!("{}", rec.finish());
    eprintln!(
        "obs:    {:.1}% of thread time attributed; tag busy {tag_busy_ms:.1} ms \
         over {} workers",
        report.coverage * 100.0,
        report.workers.len(),
    );
}
