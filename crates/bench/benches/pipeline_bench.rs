//! Criterion benchmarks for the ingestion pipeline: parsing and expert
//! tagging throughput on generated Liberty text.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sclog_parse::LogReader;
use sclog_rules::RuleSet;
use sclog_simgen::{generate, Scale};
use sclog_types::{CategoryRegistry, SystemId};

fn bench_pipeline(c: &mut Criterion) {
    let log = generate(SystemId::Liberty, Scale::new(0.05, 0.0002), 2);
    let text = log.render();
    let lines = text.lines().count() as u64;

    let mut group = c.benchmark_group("pipeline_liberty");
    group.sample_size(20);
    group.throughput(Throughput::Elements(lines));
    group.bench_function("parse", |b| {
        b.iter(|| {
            let mut reader = LogReader::for_system(SystemId::Liberty);
            reader.push_text(&text);
            reader.stats().parsed
        })
    });

    let mut registry = CategoryRegistry::new();
    let rules = RuleSet::builtin(SystemId::Liberty, &mut registry);
    group.bench_function("tag_serial", |b| {
        b.iter(|| rules.tag_messages(&log.messages, &log.interner).len())
    });
    group.bench_function("tag_parallel4", |b| {
        b.iter(|| rules.tag_messages_parallel(&log.messages, &log.interner, 4).len())
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
