//! Criterion benchmark for Section 3.3.2's performance claim: the
//! simultaneous spatio-temporal filter is faster than the serial
//! temporal-then-spatial baseline (the paper measured ~16% on the
//! Spirit logs).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use sclog_core::Study;
use sclog_filter::{AdaptiveFilter, AlertFilter, SerialFilter, SpatioTemporalFilter, TupleFilter};
use sclog_types::{Alert, Duration};

fn spirit_alerts() -> Vec<Alert> {
    // A Spirit-shaped alert stream: the system whose 172.8M alerts
    // motivated the speed comparison. 0.2% scale ≈ 350k alerts.
    let run = Study::new(0.002, 0.00001, 1).run_system(sclog_types::SystemId::Spirit);
    run.tagged.alerts
}

fn bench_filters(c: &mut Criterion) {
    let alerts = spirit_alerts();
    let mut group = c.benchmark_group("filter_spirit");
    group.sample_size(20);
    group.throughput(criterion::Throughput::Elements(alerts.len() as u64));

    group.bench_function("simultaneous", |b| {
        let f = SpatioTemporalFilter::paper();
        b.iter_batched(|| &alerts, |a| f.filter(a), BatchSize::LargeInput)
    });
    group.bench_function("serial", |b| {
        let f = SerialFilter::paper();
        b.iter_batched(|| &alerts, |a| f.filter(a), BatchSize::LargeInput)
    });
    group.bench_function("tuple", |b| {
        let f = TupleFilter::paper();
        b.iter_batched(|| &alerts, |a| f.filter(a), BatchSize::LargeInput)
    });
    group.bench_function("adaptive_default", |b| {
        let f = AdaptiveFilter::new(Duration::from_secs(5));
        b.iter_batched(|| &alerts, |a| f.filter(a), BatchSize::LargeInput)
    });
    group.finish();
}

criterion_group!(benches, bench_filters);
criterion_main!(benches);
