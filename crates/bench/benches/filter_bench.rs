//! Wall-clock benchmark for Section 3.3.2's performance claim: the
//! simultaneous spatio-temporal filter is faster than the serial
//! temporal-then-spatial baseline (the paper measured ~16% on the
//! Spirit logs).
//!
//! Emits one JSON record per benchmark on stdout; human-readable
//! summaries go to stderr.

use sclog_bench::BenchGroup;
use sclog_core::Study;
use sclog_filter::{AdaptiveFilter, AlertFilter, SerialFilter, SpatioTemporalFilter, TupleFilter};
use sclog_types::{Alert, Duration};

fn spirit_alerts() -> Vec<Alert> {
    // A Spirit-shaped alert stream: the system whose 172.8M alerts
    // motivated the speed comparison. 0.2% scale ≈ 350k alerts.
    let run = Study::new(0.002, 0.00001, 1).run_system(sclog_types::SystemId::Spirit);
    run.tagged.alerts
}

fn main() {
    let alerts = spirit_alerts();
    let mut group = BenchGroup::new("filter_spirit");
    group
        .sample_size(20)
        .throughput_elements(alerts.len() as u64);

    let f = SpatioTemporalFilter::paper();
    group.bench("simultaneous", || f.filter(&alerts));
    let f = SerialFilter::paper();
    group.bench("serial", || f.filter(&alerts));
    let f = TupleFilter::paper();
    group.bench("tuple", || f.filter(&alerts));
    let f = AdaptiveFilter::new(Duration::from_secs(5));
    group.bench("adaptive_default", || f.filter(&alerts));
}
