//! Wall-clock benchmark for the prefiltered tagging engine.
//!
//! The tagging loop is the hot path of the reproduction: Section 3.2's
//! expert rules must run over every one of the paper's 178 million
//! lines. This bench times the Aho-Corasick-prescanned engine against
//! the brute-force all-rules path, serial and parallel, on two
//! workload shapes:
//!
//! * **Spirit** — mostly background ("mostly-untagged"), where the
//!   prescan rejects almost every line without running a single regex;
//! * **Liberty** — a heavier alert mix, where more lines survive the
//!   prescan and the candidate loop does real work.
//!
//! Emits one JSON record per benchmark on stdout (captured in
//! `BENCH_tagger.json` at the repo root); human-readable summaries go
//! to stderr.

use sclog_bench::{BenchGroup, HARNESS_SEED};
use sclog_rules::RuleSet;
use sclog_simgen::{generate, Scale};
use sclog_types::{CategoryRegistry, SystemId};

/// Threads for the parallel arms — matches the study driver's cap.
const THREADS: usize = 4;

fn bench_system(system: SystemId, scale: Scale) {
    let log = generate(system, scale, HARNESS_SEED);
    let mut registry = CategoryRegistry::new();
    let rules = RuleSet::builtin(system, &mut registry);

    // The two paths must agree before their speeds mean anything.
    let pre = rules.tag_messages(&log.messages, &log.interner);
    let brute = rules.tag_messages_unfiltered(&log.messages, &log.interner);
    assert_eq!(
        pre.alerts, brute.alerts,
        "{system}: prefiltered and brute-force tagging disagree"
    );
    eprintln!(
        "{system}: {} messages, {} tagged",
        log.len(),
        pre.alerts.len()
    );

    let name = format!("tagger_{}", format!("{system:?}").to_lowercase());
    let mut group = BenchGroup::new(&name);
    group.sample_size(10).throughput_elements(log.len() as u64);

    // Each serial/parallel comparison interleaves its samples so the
    // pair is measured under the same drift (frequency scaling,
    // allocator state) rather than one arm after the other.
    group.bench_pair(
        "serial_prefiltered",
        || rules.tag_messages(&log.messages, &log.interner),
        "parallel4_prefiltered",
        || rules.tag_messages_parallel(&log.messages, &log.interner, THREADS),
    );
    group.bench_pair(
        "serial_brute",
        || rules.tag_messages_unfiltered(&log.messages, &log.interner),
        "parallel4_brute",
        || rules.tag_messages_parallel_unfiltered(&log.messages, &log.interner, THREADS),
    );
}

fn main() {
    // Spirit: tiny alert scale over a large background volume — the
    // shape where almost no line matches any rule.
    bench_system(SystemId::Spirit, Scale::new(0.00002, 0.0005));
    // Liberty: alert-heavier mix (Liberty has only 2,452 paper
    // alerts, so the alert scale must be much larger to tag anything).
    bench_system(SystemId::Liberty, Scale::new(0.05, 0.0003));
}
