//! Wall-clock benchmark for the prefiltered tagging engine.
//!
//! The tagging loop is the hot path of the reproduction: Section 3.2's
//! expert rules must run over every one of the paper's 178 million
//! lines. This bench times the Aho-Corasick-prescanned engine against
//! the brute-force all-rules path, serial and parallel, on two
//! workload shapes:
//!
//! * **Spirit** — mostly background ("mostly-untagged"), where the
//!   prescan rejects almost every line without running a single regex;
//! * **Liberty** — a heavier alert mix, where more lines survive the
//!   prescan and the candidate loop does real work.
//!
//! Emits one JSON record per benchmark on stdout (captured in
//! `BENCH_tagger.json` at the repo root); human-readable summaries go
//! to stderr.

use sclog_bench::{BenchGroup, HARNESS_SEED};
use sclog_rules::{RuleSet, TagScratch};
use sclog_simgen::{generate, Scale};
use sclog_types::json::JsonObject;
use sclog_types::{CategoryRegistry, SystemId};

/// Threads for the parallel arms — matches the study driver's cap.
const THREADS: usize = 4;

/// One counted serial pass over the log, reported as a
/// `{"record":"tiers",...}` line: where the engine's work actually
/// went — prefilter-gated lines, lazy-DFA resolutions, and Pike-VM
/// fallbacks — so a timing shift in `BENCH_tagger.json` can be traced
/// to the tier whose share moved.
fn emit_tier_record(system: SystemId, rules: &RuleSet, log: &sclog_simgen::GenLog) {
    let mut scratch = TagScratch::new();
    for msg in &log.messages {
        let _ = rules.tag_message_with(msg, &log.interner, &mut scratch);
    }
    let counts = scratch.take_counts();
    assert_eq!(
        counts.vm_eligible,
        counts.dfa_execs + counts.dfa_bailouts,
        "{system}: tier accounting leaked"
    );
    let mut rec = JsonObject::new();
    rec.str("record", "tiers")
        .str("system", &format!("{system:?}").to_lowercase())
        .uint("lines", counts.lines)
        .uint("prefilter_gated", counts.gated_out)
        .uint("rule_checks", counts.vm_execs)
        .uint("vm_eligible", counts.vm_eligible)
        .uint("dfa_resolved", counts.dfa_execs)
        .uint("vm_fallback", counts.dfa_bailouts)
        .uint("dfa_cache_evictions", counts.dfa_evictions)
        .uint("matches", counts.matches);
    println!("{}", rec.finish());
    eprintln!(
        "{system}: tiers — {} lines, {} gated, {} rule checks, {} dfa-resolved, {} vm-fallback",
        counts.lines, counts.gated_out, counts.vm_execs, counts.dfa_execs, counts.dfa_bailouts
    );
}

/// Reports the measured serial-vs-parallel ratio as a
/// `{"record":"parallel_speedup",...}` line — only on hosts with more
/// than one CPU, where the ratio measures parallelism rather than
/// scheduling overhead.
fn emit_speedup_record(system: SystemId, serial_ns: u128, parallel_ns: u128) {
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cpus < 2 || parallel_ns == 0 {
        return;
    }
    let mut rec = JsonObject::new();
    rec.str("record", "parallel_speedup")
        .str("system", &format!("{system:?}").to_lowercase())
        .uint("host_cpus", cpus as u64)
        .uint("threads", THREADS as u64)
        .uint("serial_median_ns", serial_ns as u64)
        .uint("parallel_median_ns", parallel_ns as u64)
        .num("speedup", serial_ns as f64 / parallel_ns as f64);
    println!("{}", rec.finish());
}

fn bench_system(system: SystemId, scale: Scale) {
    let log = generate(system, scale, HARNESS_SEED);
    let mut registry = CategoryRegistry::new();
    let rules = RuleSet::builtin(system, &mut registry);

    // The two paths must agree before their speeds mean anything.
    let pre = rules.tag_messages(&log.messages, &log.interner);
    let brute = rules.tag_messages_unfiltered(&log.messages, &log.interner);
    assert_eq!(
        pre.alerts, brute.alerts,
        "{system}: prefiltered and brute-force tagging disagree"
    );
    eprintln!(
        "{system}: {} messages, {} tagged",
        log.len(),
        pre.alerts.len()
    );
    emit_tier_record(system, &rules, &log);

    let name = format!("tagger_{}", format!("{system:?}").to_lowercase());
    let mut group = BenchGroup::new(&name);
    group.sample_size(10).throughput_elements(log.len() as u64);

    // Each serial/parallel comparison interleaves its samples so the
    // pair is measured under the same drift (frequency scaling,
    // allocator state) rather than one arm after the other.
    let (serial, parallel) = group.bench_pair(
        "serial_prefiltered",
        || rules.tag_messages(&log.messages, &log.interner),
        "parallel4_prefiltered",
        || rules.tag_messages_parallel(&log.messages, &log.interner, THREADS),
    );
    emit_speedup_record(system, serial, parallel);
    group.bench_pair(
        "serial_brute",
        || rules.tag_messages_unfiltered(&log.messages, &log.interner),
        "parallel4_brute",
        || rules.tag_messages_parallel_unfiltered(&log.messages, &log.interner, THREADS),
    );
}

fn main() {
    // Spirit: tiny alert scale over a large background volume — the
    // shape where almost no line matches any rule.
    bench_system(SystemId::Spirit, Scale::new(0.00002, 0.0005));
    // Liberty: alert-heavier mix (Liberty has only 2,452 paper
    // alerts, so the alert scale must be much larger to tag anything).
    bench_system(SystemId::Liberty, Scale::new(0.05, 0.0003));
}
