//! Wall-clock sweep over the filtering threshold T: cost is flat, but
//! the kept-alert count (printed once per T) falls as T grows — the
//! tradeoff behind the paper's fixed T = 5 s choice.
//!
//! Emits one JSON record per benchmark on stdout; human-readable
//! summaries go to stderr.

use sclog_bench::BenchGroup;
use sclog_core::Study;
use sclog_filter::{AlertFilter, SpatioTemporalFilter};
use sclog_types::{Duration, SystemId};

fn main() {
    let run = Study::new(0.002, 0.00001, 3).run_system(SystemId::BlueGeneL);
    let alerts = run.tagged.alerts;
    let mut group = BenchGroup::new("threshold_sweep_bgl");
    group.sample_size(20);
    for t in [1i64, 5, 30, 300] {
        let f = SpatioTemporalFilter::new(Duration::from_secs(t));
        eprintln!(
            "T={t}s keeps {} of {} alerts",
            f.filter(&alerts).len(),
            alerts.len()
        );
        group.bench(&format!("T={t}s"), || f.filter(&alerts).len());
    }
}
