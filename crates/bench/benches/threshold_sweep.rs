//! Criterion sweep over the filtering threshold T: cost is flat, but
//! the kept-alert count (printed once) falls as T grows — the tradeoff
//! behind the paper's fixed T = 5 s choice.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sclog_core::Study;
use sclog_filter::{AlertFilter, SpatioTemporalFilter};
use sclog_types::{Duration, SystemId};

fn bench_sweep(c: &mut Criterion) {
    let run = Study::new(0.002, 0.00001, 3).run_system(SystemId::BlueGeneL);
    let alerts = run.tagged.alerts;
    let mut group = c.benchmark_group("threshold_sweep_bgl");
    group.sample_size(20);
    for t in [1i64, 5, 30, 300] {
        let f = SpatioTemporalFilter::new(Duration::from_secs(t));
        println!("T={t}s keeps {} of {} alerts", f.filter(&alerts).len(), alerts.len());
        group.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, _| {
            b.iter(|| f.filter(&alerts).len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sweep);
criterion_main!(benches);
