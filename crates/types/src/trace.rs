//! Report schema for the request-tracing layer.
//!
//! [`crate::obs`] defines the vocabulary of one cumulative recorder
//! snapshot; this module defines the vocabulary of *differences* and
//! *per-request* observations on top of it — the by-value scan
//! statistics the store hands back per query, the slow-query log
//! entries `sclogd` retains, and the timeline of deltas its background
//! sampler produces. The mechanics (snapshot subtraction, the history
//! ring, the sampler) live in `sclog-obs` and `sclogd`; as with the
//! obs schema, only the shared vocabulary and its JSON rendering live
//! here so producers and checkers agree without a recorder dependency.
//!
//! All durations are nanoseconds except [`QueryTrace::micros`], which
//! is microseconds — request latencies are what operators compare
//! against timeouts, and those are quoted in µs/ms.

use crate::json::{JsonArray, JsonObject};
use crate::obs::ObsReport;

/// The one schema version every trace-layer document carries.
///
/// Single definition site, enforced by `scripts/tidy.sh` check 9.
pub const TRACE_FORMAT_VERSION: u16 = 1;

/// The schema tag written into every trace-layer JSON document.
pub const TRACE_SCHEMA: &str = "sclog.trace.v1";

/// By-value statistics for one store scan: what the zone maps pruned
/// versus what was actually read and decoded to answer the query.
///
/// The store also credits the same numbers to its global obs counters;
/// this struct is the per-request view that makes a single pathological
/// scan visible inside server-lifetime aggregates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// `(system, day)` partitions skipped wholesale by the filter.
    pub partitions_pruned: u64,
    /// Partitions the scan actually visited.
    pub partitions_scanned: u64,
    /// Sealed segments skipped — by partition pruning or a zone-map
    /// mismatch — without touching their payloads.
    pub zones_pruned: u64,
    /// Sealed segments whose payloads were read and filtered.
    pub zones_scanned: u64,
    /// Payload bytes read from disk (0 for payload-cache hits).
    pub bytes_read: u64,
    /// Stored rows decoded and offered to the filter (segment payloads
    /// plus unsealed tails).
    pub rows_decoded: u64,
}

impl ScanStats {
    /// Accumulates another scan's statistics into this one (for
    /// requests that trigger more than one scan).
    pub fn merge(&mut self, other: &ScanStats) {
        self.partitions_pruned += other.partitions_pruned;
        self.partitions_scanned += other.partitions_scanned;
        self.zones_pruned += other.zones_pruned;
        self.zones_scanned += other.zones_scanned;
        self.bytes_read += other.bytes_read;
        self.rows_decoded += other.rows_decoded;
    }

    /// Renders the statistics as a JSON object.
    pub fn to_json(&self) -> String {
        let mut o = JsonObject::new();
        o.uint("partitions_pruned", self.partitions_pruned)
            .uint("partitions_scanned", self.partitions_scanned)
            .uint("zones_pruned", self.zones_pruned)
            .uint("zones_scanned", self.zones_scanned)
            .uint("bytes_read", self.bytes_read)
            .uint("rows_decoded", self.rows_decoded);
        o.finish()
    }
}

/// One request in the slow-query log: who it was, what it asked,
/// how long it took, and what the scan had to touch to answer it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryTrace {
    /// Monotonic per-server request id (never reused within a run).
    pub trace_id: u64,
    /// The routed endpoint (`/alerts`, `/categories`, …, or `other`).
    pub endpoint: String,
    /// The query string, normalized (parameters sorted, empties
    /// dropped) so identical questions collate.
    pub query: String,
    /// End-to-end request latency in microseconds.
    pub micros: u64,
    /// HTTP status the request was answered with.
    pub status: u16,
    /// Scan statistics, when the request ran a store scan (`None` for
    /// non-scanning endpoints and cache hits).
    pub scan: Option<ScanStats>,
}

impl QueryTrace {
    /// Renders the trace as a JSON object.
    pub fn to_json(&self) -> String {
        let mut o = JsonObject::new();
        o.uint("trace_id", self.trace_id)
            .str("endpoint", &self.endpoint)
            .str("query", &self.query)
            .uint("micros", self.micros)
            .uint("status", self.status as u64);
        if let Some(scan) = &self.scan {
            o.raw("scan", &scan.to_json());
        }
        o.finish()
    }
}

/// The slow-query log document served at `/obs/queries`: the retained
/// ring size plus the requested top-k entries, slowest first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryLogReport {
    /// How many traces the bounded ring currently retains.
    pub logged: u64,
    /// The reported entries, sorted by descending `micros`.
    pub queries: Vec<QueryTrace>,
}

impl QueryLogReport {
    /// Renders the log as one JSON document.
    pub fn to_json(&self) -> String {
        let mut queries = JsonArray::new();
        for q in &self.queries {
            queries.push_raw(&q.to_json());
        }
        let mut o = JsonObject::new();
        o.str("schema", TRACE_SCHEMA)
            .uint("logged", self.logged)
            .raw("queries", &queries.finish());
        o.finish()
    }
}

/// One timeline step: the recorder delta between two consecutive
/// history-ring snapshots.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineSample {
    /// When the step ended, as nanoseconds since recorder creation —
    /// the relative-time stamp shared by every sample in a timeline.
    pub at_ns: u64,
    /// Everything that happened during the step, as an [`ObsReport`]
    /// whose totals are differences (gauges stay instantaneous).
    pub delta: ObsReport,
}

impl TimelineSample {
    /// Renders the sample as a JSON object.
    pub fn to_json(&self) -> String {
        let mut o = JsonObject::new();
        o.uint("at_ns", self.at_ns)
            .raw("delta", &self.delta.to_json());
        o.finish()
    }
}

/// The timeline document served at `/obs/timeline`: consecutive deltas
/// over the sampler's history ring, oldest first.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineReport {
    /// Consecutive-snapshot deltas in chronological order.
    pub samples: Vec<TimelineSample>,
}

impl TimelineReport {
    /// Renders the timeline as one JSON document.
    pub fn to_json(&self) -> String {
        let mut samples = JsonArray::new();
        for s in &self.samples {
            samples.push_raw(&s.to_json());
        }
        let mut o = JsonObject::new();
        o.str("schema", TRACE_SCHEMA)
            .raw("samples", &samples.finish());
        o.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn sample_trace() -> QueryTrace {
        QueryTrace {
            trace_id: 7,
            endpoint: "/alerts".into(),
            query: "limit=5&system=bgl".into(),
            micros: 1_234,
            status: 200,
            scan: Some(ScanStats {
                partitions_pruned: 8,
                partitions_scanned: 2,
                zones_pruned: 40,
                zones_scanned: 3,
                bytes_read: 65_536,
                rows_decoded: 1_024,
            }),
        }
    }

    #[test]
    fn query_log_json_is_valid_and_carries_schema() {
        let report = QueryLogReport {
            logged: 1,
            queries: vec![sample_trace()],
        };
        let json = report.to_json();
        json::validate(&json).expect("query log renders valid JSON");
        assert!(json.starts_with(r#"{"schema":"sclog.trace.v1""#));
        for key in [
            "\"logged\"",
            "\"queries\"",
            "\"trace_id\"",
            "\"endpoint\"",
            "\"query\"",
            "\"micros\"",
            "\"status\"",
            "\"scan\"",
            "\"partitions_pruned\"",
            "\"partitions_scanned\"",
            "\"zones_pruned\"",
            "\"zones_scanned\"",
            "\"bytes_read\"",
            "\"rows_decoded\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn scanless_trace_omits_the_scan_key() {
        let trace = QueryTrace {
            scan: None,
            ..sample_trace()
        };
        let json = trace.to_json();
        json::validate(&json).expect("trace renders valid JSON");
        assert!(
            !json.contains("\"scan\""),
            "scanless trace leaked a scan: {json}"
        );
    }

    #[test]
    fn timeline_json_is_valid_and_carries_schema() {
        let report = TimelineReport {
            samples: vec![TimelineSample {
                at_ns: 500,
                delta: ObsReport {
                    wall_ns: 250,
                    attributed_ns: 0,
                    coverage: 1.0,
                    stages: Vec::new(),
                    workers: Vec::new(),
                    counters: Vec::new(),
                    gauges: Vec::new(),
                    histograms: Vec::new(),
                },
            }],
        };
        let json = report.to_json();
        json::validate(&json).expect("timeline renders valid JSON");
        assert!(json.starts_with(r#"{"schema":"sclog.trace.v1""#));
        for key in ["\"samples\"", "\"at_ns\"", "\"delta\"", "\"sclog.obs.v1\""] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn scan_stats_merge_adds_fieldwise() {
        let mut a = ScanStats {
            partitions_pruned: 1,
            partitions_scanned: 2,
            zones_pruned: 3,
            zones_scanned: 4,
            bytes_read: 5,
            rows_decoded: 6,
        };
        a.merge(&a.clone());
        assert_eq!(
            a,
            ScanStats {
                partitions_pruned: 2,
                partitions_scanned: 4,
                zones_pruned: 6,
                zones_scanned: 8,
                bytes_read: 10,
                rows_decoded: 12,
            }
        );
    }
}
