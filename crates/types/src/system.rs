//! The five studied supercomputers and their Table 1/Table 2 metadata.

use crate::time::{Duration, Timestamp};
use std::fmt;
use std::str::FromStr;

/// One of the five supercomputers studied in the paper.
///
/// # Examples
///
/// ```
/// use sclog_types::SystemId;
///
/// assert_eq!(SystemId::Liberty.to_string(), "Liberty");
/// assert_eq!("Red Storm".parse::<SystemId>(), Ok(SystemId::RedStorm));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SystemId {
    /// Blue Gene/L at Lawrence Livermore National Labs (IBM, 131 072 procs).
    BlueGeneL,
    /// Thunderbird at Sandia (Dell, 9024 procs, Infiniband).
    Thunderbird,
    /// Red Storm at Sandia (Cray, 10 880 procs, custom interconnect).
    RedStorm,
    /// Spirit (ICC2) at Sandia (HP, 1028 procs, GigEthernet).
    Spirit,
    /// Liberty at Sandia (HP, 512 procs, Myrinet).
    Liberty,
}

/// All five systems in the order they appear in the paper's tables.
pub const ALL_SYSTEMS: [SystemId; 5] = [
    SystemId::BlueGeneL,
    SystemId::Thunderbird,
    SystemId::RedStorm,
    SystemId::Spirit,
    SystemId::Liberty,
];

impl SystemId {
    /// Static characteristics of the system (the paper's Table 1 plus the
    /// observation window of Table 2).
    pub fn spec(self) -> &'static SystemSpec {
        match self {
            SystemId::BlueGeneL => &BGL_SPEC,
            SystemId::Thunderbird => &TBIRD_SPEC,
            SystemId::RedStorm => &RSTORM_SPEC,
            SystemId::Spirit => &SPIRIT_SPEC,
            SystemId::Liberty => &LIBERTY_SPEC,
        }
    }

    /// Whether the system records message severity in its logs.
    ///
    /// Per Section 3.2 of the paper, only BG/L (RAS severities) and
    /// Red Storm's syslog path store severities; Thunderbird, Spirit and
    /// Liberty "did not even record this information".
    pub fn records_severity(self) -> bool {
        matches!(self, SystemId::BlueGeneL | SystemId::RedStorm)
    }

    /// Whether the system's primary log path is lossy (standard UDP
    /// syslog forwarding) rather than reliable (TCP RAS network or local
    /// database).
    pub fn has_lossy_collection(self) -> bool {
        matches!(
            self,
            SystemId::Thunderbird | SystemId::Spirit | SystemId::Liberty
        )
    }
}

impl fmt::Display for SystemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.spec().name)
    }
}

/// Error returned when parsing a [`SystemId`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSystemIdError(String);

impl fmt::Display for ParseSystemIdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown system name: {:?}", self.0)
    }
}

impl std::error::Error for ParseSystemIdError {}

impl FromStr for SystemId {
    type Err = ParseSystemIdError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s
            .to_ascii_lowercase()
            .replace([' ', '-', '_', '/', '(', ')'], "")
            .as_str()
        {
            "bluegenel" | "bgl" | "bluegene" => Ok(SystemId::BlueGeneL),
            "thunderbird" | "tbird" => Ok(SystemId::Thunderbird),
            "redstorm" => Ok(SystemId::RedStorm),
            "spirit" | "icc2" | "spiriticc2" => Ok(SystemId::Spirit),
            "liberty" => Ok(SystemId::Liberty),
            _ => Err(ParseSystemIdError(s.to_owned())),
        }
    }
}

/// Static description of a system: the paper's Table 1 row plus the
/// observation window from Table 2.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemSpec {
    /// Which system this spec describes.
    pub id_name: &'static str,
    /// Human-readable name as printed in the paper.
    pub name: &'static str,
    /// Owning laboratory.
    pub owner: &'static str,
    /// Hardware vendor.
    pub vendor: &'static str,
    /// Rank on the June 2006 Top500 list.
    pub top500_rank: u32,
    /// Number of processors.
    pub processors: u32,
    /// Main memory in gigabytes.
    pub memory_gb: u32,
    /// Interconnect technology.
    pub interconnect: &'static str,
    /// First day of log collection (Table 2 "Start Date").
    pub start_date: (i32, u32, u32),
    /// Number of days of collected logs (Table 2 "Days").
    pub days: u32,
    /// Approximate number of distinct message sources we simulate.
    ///
    /// The paper does not tabulate source counts; these values are scaled
    /// from the processor counts (multi-processor nodes) plus
    /// administrative/service nodes, matching Figure 2(b)'s order of
    /// magnitude for Liberty (~250 sources).
    pub sources: u32,
}

impl SystemSpec {
    /// Timestamp of the start of the observation window (midnight UTC).
    pub fn start(&self) -> Timestamp {
        let (y, m, d) = self.start_date;
        Timestamp::from_ymd_hms(y, m, d, 0, 0, 0)
    }

    /// Length of the observation window.
    pub fn span(&self) -> Duration {
        Duration::from_days(i64::from(self.days))
    }

    /// Timestamp of the end of the observation window.
    pub fn end(&self) -> Timestamp {
        self.start() + self.span()
    }
}

static BGL_SPEC: SystemSpec = SystemSpec {
    id_name: "BlueGeneL",
    name: "Blue Gene/L",
    owner: "LLNL",
    vendor: "IBM",
    top500_rank: 1,
    processors: 131_072,
    memory_gb: 32_768,
    interconnect: "Custom",
    start_date: (2005, 6, 3),
    days: 215,
    sources: 2048,
};

static TBIRD_SPEC: SystemSpec = SystemSpec {
    id_name: "Thunderbird",
    name: "Thunderbird",
    owner: "SNL",
    vendor: "Dell",
    top500_rank: 6,
    processors: 9024,
    memory_gb: 27_072,
    interconnect: "Infiniband",
    start_date: (2005, 11, 9),
    days: 244,
    sources: 4512,
};

static RSTORM_SPEC: SystemSpec = SystemSpec {
    id_name: "RedStorm",
    name: "Red Storm",
    owner: "SNL",
    vendor: "Cray",
    top500_rank: 9,
    processors: 10_880,
    memory_gb: 32_640,
    interconnect: "Custom",
    start_date: (2006, 3, 19),
    days: 104,
    sources: 5440,
};

static SPIRIT_SPEC: SystemSpec = SystemSpec {
    id_name: "Spirit",
    name: "Spirit (ICC2)",
    owner: "SNL",
    vendor: "HP",
    top500_rank: 202,
    processors: 1028,
    memory_gb: 1024,
    interconnect: "GigEthernet",
    start_date: (2005, 1, 1),
    days: 558,
    sources: 514,
};

static LIBERTY_SPEC: SystemSpec = SystemSpec {
    id_name: "Liberty",
    name: "Liberty",
    owner: "SNL",
    vendor: "HP",
    top500_rank: 445,
    processors: 512,
    memory_gb: 944,
    interconnect: "Myrinet",
    start_date: (2004, 12, 12),
    days: 315,
    sources: 256,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values() {
        assert_eq!(SystemId::BlueGeneL.spec().top500_rank, 1);
        assert_eq!(SystemId::Thunderbird.spec().processors, 9024);
        assert_eq!(SystemId::RedStorm.spec().memory_gb, 32_640);
        assert_eq!(SystemId::Spirit.spec().interconnect, "GigEthernet");
        assert_eq!(SystemId::Liberty.spec().top500_rank, 445);
    }

    #[test]
    fn table2_windows() {
        let bgl = SystemId::BlueGeneL.spec();
        assert_eq!(bgl.start().to_iso_string(), "2005-06-03 00:00:00");
        assert_eq!(bgl.span(), Duration::from_days(215));
        let spirit = SystemId::Spirit.spec();
        assert_eq!(spirit.end().to_iso_string(), "2006-07-13 00:00:00");
    }

    #[test]
    fn severity_recording_matches_paper() {
        assert!(SystemId::BlueGeneL.records_severity());
        assert!(SystemId::RedStorm.records_severity());
        assert!(!SystemId::Thunderbird.records_severity());
        assert!(!SystemId::Spirit.records_severity());
        assert!(!SystemId::Liberty.records_severity());
    }

    #[test]
    fn lossy_collection_is_the_syslog_systems() {
        assert!(!SystemId::BlueGeneL.has_lossy_collection());
        assert!(!SystemId::RedStorm.has_lossy_collection());
        assert!(SystemId::Thunderbird.has_lossy_collection());
        assert!(SystemId::Spirit.has_lossy_collection());
        assert!(SystemId::Liberty.has_lossy_collection());
    }

    #[test]
    fn parse_round_trip() {
        for sys in ALL_SYSTEMS {
            assert_eq!(sys.to_string().parse::<SystemId>(), Ok(sys));
        }
        assert_eq!("bgl".parse::<SystemId>(), Ok(SystemId::BlueGeneL));
        assert!("cray-2".parse::<SystemId>().is_err());
        let err = "cray-2".parse::<SystemId>().unwrap_err();
        assert!(err.to_string().contains("cray-2"));
    }

    #[test]
    fn ordering_matches_paper_tables() {
        let mut sorted = ALL_SYSTEMS;
        sorted.sort();
        assert_eq!(sorted, ALL_SYSTEMS);
    }
}
