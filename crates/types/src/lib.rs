//! Core vocabulary for the `sclog` workspace.
//!
//! This crate defines the data model shared by every other crate in the
//! reproduction of *What Supercomputers Say: A Study of Five System Logs*
//! (Oliner & Stearley, DSN 2007):
//!
//! * [`Timestamp`] — microsecond-resolution instants (BG/L logs are
//!   microsecond-granular; syslogs are second-granular).
//! * [`SystemId`] — the five studied supercomputers, with their Table 1
//!   characteristics available via [`SystemId::spec`].
//! * [`Severity`] — both severity vocabularies seen in the paper: the BSD
//!   syslog scale and the BG/L RAS scale.
//! * [`NodeId`] / [`SourceInterner`] — compact interned message sources.
//! * [`Message`] — one parsed log entry.
//! * [`CategoryId`] / [`CategoryRegistry`] — alert categories ("two alerts
//!   are in the same category if they were tagged by the same expert
//!   rule").
//! * [`Alert`] — a tagged alert, optionally carrying the ground-truth
//!   [`FailureId`] when produced by the simulator.
//!
//! # Examples
//!
//! ```
//! use sclog_types::{SystemId, Timestamp};
//!
//! let t = Timestamp::from_ymd_hms(2005, 6, 3, 15, 42, 50);
//! assert_eq!(t.to_bgl_string(), "2005-06-03-15.42.50.000000");
//! assert_eq!(SystemId::BlueGeneL.spec().processors, 131_072);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alert;
pub mod audit;
pub mod category;
pub mod json;
pub mod message;
pub mod obs;
pub mod segment;
pub mod severity;
pub mod source;
pub mod system;
pub mod time;
pub mod trace;

pub use alert::{Alert, AlertType, FailureId};
pub use audit::{AuditFinding, AuditLevel, AuditReport, RuleHealth, SystemAudit};
pub use category::{CategoryDef, CategoryId, CategoryRegistry};
pub use message::Message;
pub use obs::{BucketObs, CounterObs, GaugeObs, HistogramObs, ObsReport, StageObs, WorkerObs};
pub use severity::{BglSeverity, Severity, SyslogSeverity};
pub use source::{NodeId, SourceInterner};
pub use system::{SystemId, SystemSpec, ALL_SYSTEMS};
pub use time::{Duration, Timestamp};
pub use trace::{
    QueryLogReport, QueryTrace, ScanStats, TimelineReport, TimelineSample, TRACE_FORMAT_VERSION,
    TRACE_SCHEMA,
};
