//! Report schema for the static rule-catalog audit.
//!
//! The analyses live in the `sclog-audit` crate; this module only
//! defines the *vocabulary* of the report — finding levels, finding
//! records, per-rule health metrics — and their JSON rendering on top
//! of [`crate::json`], so any crate (or the committed golden snapshot)
//! can speak the same schema without depending on the analyzer.

use crate::json::{JsonArray, JsonObject};
use std::fmt;

/// Severity of an audit finding, in decreasing order of urgency.
///
/// The levels follow lint-gate convention: `Deny` findings fail the
/// tier-1 `verify.sh --lint` gate, `Warn` findings are actionable but
/// non-fatal, and `Allow` findings are informational properties of the
/// catalog that are expected and accepted (e.g. order-resolved
/// overlaps between a broad `.*`-gap rule and a literal rule).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AuditLevel {
    /// Fails the lint gate: the catalog is definitely wrong (dead
    /// category, empty-language regex, structural contradiction).
    Deny,
    /// Worth fixing: degrades performance or robustness but does not
    /// change tagging results (factor-less rule in the always-check
    /// set, redundant leading `.*`, universal pattern).
    Warn,
    /// Informational: a true property of the catalog whose resolution
    /// is the documented catalog-order semantics.
    Allow,
}

impl AuditLevel {
    /// Stable lower-case name used in JSON and the text report.
    pub fn as_str(self) -> &'static str {
        match self {
            AuditLevel::Deny => "deny",
            AuditLevel::Warn => "warn",
            AuditLevel::Allow => "allow",
        }
    }
}

impl fmt::Display for AuditLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One audit finding about a rule (or a pair of rules) in a system's
/// catalog.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditFinding {
    /// How seriously the lint gate treats this finding.
    pub level: AuditLevel,
    /// Stable machine-readable finding code (e.g. `shadowed`,
    /// `overlap`, `empty-language`, `always-check`).
    pub code: String,
    /// Category name of the rule the finding is about.
    pub rule: String,
    /// The other rule involved, for pairwise findings (the shadowing
    /// rule, or the overlap partner).
    pub other: Option<String>,
    /// Human-readable explanation.
    pub detail: String,
    /// A witness string demonstrating the finding, when the analysis
    /// produced one (a line matched by both rules of a pair, or by the
    /// shadowed rule).
    pub witness: Option<String>,
}

impl AuditFinding {
    /// Renders the finding as a JSON object.
    pub fn to_json(&self) -> String {
        let mut o = JsonObject::new();
        o.str("level", self.level.as_str())
            .str("code", &self.code)
            .str("rule", &self.rule);
        if let Some(other) = &self.other {
            o.str("other", other);
        }
        o.str("detail", &self.detail);
        if let Some(w) = &self.witness {
            o.str("witness", w);
        }
        o.finish()
    }
}

/// Static health metrics for one compiled rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleHealth {
    /// Category name.
    pub rule: String,
    /// Total NFA instructions across the rule's compiled regex
    /// programs.
    pub insts: usize,
    /// Upper bound on simultaneously live VM threads: the number of
    /// consuming (character) instructions, since the thread set dedups
    /// by program counter.
    pub thread_bound: usize,
    /// Required-literal factor count (`0` = unfilterable).
    pub factors: usize,
    /// Length of the weakest (shortest) factor — the prescan must hit
    /// on *any* factor, so this bounds prefilter selectivity. `0` when
    /// the rule has no factors.
    pub weakest_factor_len: usize,
    /// True when the rule has no factors and therefore sits in the
    /// prefilter's always-check set, running its NFA on every line.
    pub always_check: bool,
}

impl RuleHealth {
    /// Renders the metrics as a JSON object.
    pub fn to_json(&self) -> String {
        let mut o = JsonObject::new();
        o.str("rule", &self.rule)
            .uint("insts", self.insts as u64)
            .uint("thread_bound", self.thread_bound as u64)
            .uint("factors", self.factors as u64)
            .uint("weakest_factor_len", self.weakest_factor_len as u64)
            .bool("always_check", self.always_check);
        o.finish()
    }
}

/// The audit of one system's catalog: per-rule health plus findings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SystemAudit {
    /// System name (lower-case, as in `SystemId::name`).
    pub system: String,
    /// Number of rules in the catalog, in priority order.
    pub rules: Vec<RuleHealth>,
    /// Findings, sorted by (level, code, rule, other) for deterministic
    /// snapshots.
    pub findings: Vec<AuditFinding>,
}

impl SystemAudit {
    /// Renders the system audit as a JSON object.
    pub fn to_json(&self) -> String {
        let mut rules = JsonArray::new();
        for r in &self.rules {
            rules.push_raw(&r.to_json());
        }
        let mut findings = JsonArray::new();
        for f in &self.findings {
            findings.push_raw(&f.to_json());
        }
        let mut o = JsonObject::new();
        o.str("system", &self.system)
            .raw("rules", &rules.finish())
            .raw("findings", &findings.finish());
        o.finish()
    }
}

/// The full audit report over every system's catalog.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditReport {
    /// Schema version, bumped when the JSON layout changes.
    pub version: u32,
    /// One entry per audited system.
    pub systems: Vec<SystemAudit>,
}

impl AuditReport {
    /// Counts findings at each level across all systems as
    /// `(deny, warn, allow)`.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for s in &self.systems {
            for f in &s.findings {
                match f.level {
                    AuditLevel::Deny => c.0 += 1,
                    AuditLevel::Warn => c.1 += 1,
                    AuditLevel::Allow => c.2 += 1,
                }
            }
        }
        c
    }

    /// Renders the whole report as one JSON object (deterministic:
    /// callers sort findings before building the report).
    pub fn to_json(&self) -> String {
        let (deny, warn, allow) = self.counts();
        let mut systems = JsonArray::new();
        for s in &self.systems {
            systems.push_raw(&s.to_json());
        }
        let mut o = JsonObject::new();
        o.uint("version", self.version as u64)
            .uint("deny", deny as u64)
            .uint("warn", warn as u64)
            .uint("allow", allow as u64)
            .raw("systems", &systems.finish());
        o.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_by_urgency() {
        assert!(AuditLevel::Deny < AuditLevel::Warn);
        assert!(AuditLevel::Warn < AuditLevel::Allow);
        assert_eq!(AuditLevel::Deny.to_string(), "deny");
    }

    #[test]
    fn finding_json_omits_absent_fields() {
        let f = AuditFinding {
            level: AuditLevel::Warn,
            code: "always-check".into(),
            rule: "HBEAT".into(),
            other: None,
            detail: "no literal factor".into(),
            witness: None,
        };
        let json = f.to_json();
        assert!(json.contains(r#""level":"warn""#));
        assert!(!json.contains("other"));
        assert!(!json.contains("witness"));
    }

    #[test]
    fn report_counts_by_level() {
        let mk = |level| AuditFinding {
            level,
            code: "x".into(),
            rule: "R".into(),
            other: None,
            detail: String::new(),
            witness: None,
        };
        let report = AuditReport {
            version: 1,
            systems: vec![SystemAudit {
                system: "spirit".into(),
                rules: vec![],
                findings: vec![
                    mk(AuditLevel::Allow),
                    mk(AuditLevel::Deny),
                    mk(AuditLevel::Allow),
                ],
            }],
        };
        assert_eq!(report.counts(), (1, 0, 2));
        let json = report.to_json();
        assert!(json.starts_with(r#"{"version":1,"deny":1,"warn":0,"allow":2,"#));
    }
}
