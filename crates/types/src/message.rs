//! Parsed log messages.

use crate::severity::Severity;
use crate::source::NodeId;
use crate::system::SystemId;
use crate::time::Timestamp;

/// One parsed log entry.
///
/// The fields mirror what every logging path in the study provides:
/// a timestamp, a source, an optional facility/program, an optional
/// severity, and an unstructured body. The paper emphasizes that the
/// body is "the shorthand of multiple programmers" — analysis code must
/// treat it as free text.
///
/// # Examples
///
/// ```
/// use sclog_types::{Message, NodeId, Severity, SystemId, Timestamp};
///
/// let msg = Message::new(
///     SystemId::Liberty,
///     Timestamp::from_secs(1_100_000_000),
///     NodeId::from_index(0),
///     "pbs_mom",
///     Severity::None,
///     "task_check, cannot tm_reply to 12345 task 1",
/// );
/// assert_eq!(msg.facility, "pbs_mom");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// System whose log this entry came from.
    pub system: SystemId,
    /// Time of the entry. Second-granular for syslog paths,
    /// microsecond-granular for BG/L.
    pub time: Timestamp,
    /// Interned source (node, controller, service card…).
    pub source: NodeId,
    /// Program/facility that emitted the message (`kernel`, `pbs_mom`,
    /// `RAS KERNEL`, …). Empty when unknown or corrupted away.
    pub facility: String,
    /// Severity, when the logging path records one.
    pub severity: Severity,
    /// Unstructured message body.
    pub body: String,
}

impl Message {
    /// Convenience constructor.
    pub fn new(
        system: SystemId,
        time: Timestamp,
        source: NodeId,
        facility: impl Into<String>,
        severity: Severity,
        body: impl Into<String>,
    ) -> Self {
        Message {
            system,
            time,
            source,
            facility: facility.into(),
            severity,
            body: body.into(),
        }
    }

    /// Approximate on-disk size in bytes of this entry when rendered in
    /// its system's native format (used for Table 2's size column).
    pub fn rendered_len(&self) -> usize {
        // timestamp + source + facility + body + separators/newline.
        // Renderers in `sclog-parse` produce within a few bytes of this.
        26 + self.facility.len() + self.body.len() + 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_populates_fields() {
        let m = Message::new(
            SystemId::Spirit,
            Timestamp::from_secs(42),
            NodeId::from_index(7),
            "kernel",
            Severity::None,
            "EXT3-fs error (device sda5)",
        );
        assert_eq!(m.system, SystemId::Spirit);
        assert_eq!(m.time, Timestamp::from_secs(42));
        assert_eq!(m.source.index(), 7);
        assert_eq!(m.severity, Severity::None);
        assert!(m.body.starts_with("EXT3-fs"));
    }

    #[test]
    fn rendered_len_scales_with_body() {
        let short = Message::new(
            SystemId::Liberty,
            Timestamp::EPOCH,
            NodeId::from_index(0),
            "kernel",
            Severity::None,
            "x",
        );
        let long = Message::new(
            SystemId::Liberty,
            Timestamp::EPOCH,
            NodeId::from_index(0),
            "kernel",
            Severity::None,
            "x".repeat(100),
        );
        assert_eq!(long.rendered_len() - short.rendered_len(), 99);
    }
}
