//! A tiny JSON *writer*.
//!
//! The pipeline only ever serializes — bench records, table/figure
//! dumps, experiment snapshots; nothing in the tree deserializes. So
//! instead of a serialization framework this module offers two small
//! push-style builders, [`JsonObject`] and [`JsonArray`], that emit
//! spec-compliant JSON text (escaped strings, `null` for non-finite
//! floats, no trailing commas).
//!
//! # Examples
//!
//! ```
//! use sclog_types::json::JsonObject;
//!
//! let mut rec = JsonObject::new();
//! rec.str("name", "filter_spirit/simultaneous")
//!     .int("iters", 20)
//!     .num("ns_per_iter", 1312.5);
//! assert_eq!(
//!     rec.finish(),
//!     r#"{"name":"filter_spirit/simultaneous","iters":20,"ns_per_iter":1312.5}"#
//! );
//! ```

use std::fmt::Write as _;

/// Escapes `s` as JSON string contents (no surrounding quotes) onto
/// `out`.
pub fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Writes a number the way JSON requires: non-finite values become
/// `null` (JSON has no NaN/Infinity).
fn push_num(v: f64, out: &mut String) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

fn push_str(s: &str, out: &mut String) {
    out.push('"');
    escape_into(s, out);
    out.push('"');
}

/// Builder for a JSON object. Fields are emitted in insertion order.
#[derive(Debug, Clone, Default)]
pub struct JsonObject {
    buf: String,
}

impl JsonObject {
    /// Starts an empty object.
    pub fn new() -> Self {
        JsonObject {
            buf: String::from("{"),
        }
    }

    fn key(&mut self, name: &str) -> &mut Self {
        if self.buf.len() > 1 {
            self.buf.push(',');
        }
        push_str(name, &mut self.buf);
        self.buf.push(':');
        self
    }

    /// Adds a string field.
    pub fn str(&mut self, name: &str, value: &str) -> &mut Self {
        self.key(name);
        push_str(value, &mut self.buf);
        self
    }

    /// Adds an integer field.
    pub fn int(&mut self, name: &str, value: i64) -> &mut Self {
        self.key(name);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Adds an unsigned integer field.
    pub fn uint(&mut self, name: &str, value: u64) -> &mut Self {
        self.key(name);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Adds a float field (`null` if non-finite).
    pub fn num(&mut self, name: &str, value: f64) -> &mut Self {
        self.key(name);
        push_num(value, &mut self.buf);
        self
    }

    /// Adds a boolean field.
    pub fn bool(&mut self, name: &str, value: bool) -> &mut Self {
        self.key(name);
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Adds a pre-rendered JSON value verbatim (e.g. a nested object or
    /// array from another builder).
    pub fn raw(&mut self, name: &str, json: &str) -> &mut Self {
        self.key(name);
        self.buf.push_str(json);
        self
    }

    /// Closes the object and returns the JSON text.
    pub fn finish(&self) -> String {
        let mut out = self.buf.clone();
        out.push('}');
        out
    }
}

/// Builder for a JSON array.
#[derive(Debug, Clone, Default)]
pub struct JsonArray {
    buf: String,
}

impl JsonArray {
    /// Starts an empty array.
    pub fn new() -> Self {
        JsonArray {
            buf: String::from("["),
        }
    }

    fn sep(&mut self) -> &mut Self {
        if self.buf.len() > 1 {
            self.buf.push(',');
        }
        self
    }

    /// Appends a string element.
    pub fn push_str(&mut self, value: &str) -> &mut Self {
        self.sep();
        push_str(value, &mut self.buf);
        self
    }

    /// Appends an integer element.
    pub fn push_int(&mut self, value: i64) -> &mut Self {
        self.sep();
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Appends a float element (`null` if non-finite).
    pub fn push_num(&mut self, value: f64) -> &mut Self {
        self.sep();
        push_num(value, &mut self.buf);
        self
    }

    /// Appends a pre-rendered JSON value verbatim.
    pub fn push_raw(&mut self, json: &str) -> &mut Self {
        self.sep();
        self.buf.push_str(json);
        self
    }

    /// Closes the array and returns the JSON text.
    pub fn finish(&self) -> String {
        let mut out = self.buf.clone();
        out.push(']');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_object_and_array() {
        assert_eq!(JsonObject::new().finish(), "{}");
        assert_eq!(JsonArray::new().finish(), "[]");
    }

    #[test]
    fn field_kinds_and_order() {
        let mut o = JsonObject::new();
        o.str("s", "x")
            .int("i", -3)
            .uint("u", 7)
            .num("f", 1.25)
            .bool("b", true);
        assert_eq!(o.finish(), r#"{"s":"x","i":-3,"u":7,"f":1.25,"b":true}"#);
    }

    #[test]
    fn escaping() {
        let mut o = JsonObject::new();
        o.str("k", "a\"b\\c\nd\te\u{1}");
        assert_eq!(o.finish(), r#"{"k":"a\"b\\c\nd\te\u0001"}"#);
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut a = JsonArray::new();
        a.push_num(f64::NAN).push_num(f64::INFINITY).push_num(0.5);
        assert_eq!(a.finish(), "[null,null,0.5]");
    }

    #[test]
    fn nesting_via_raw() {
        let mut inner = JsonArray::new();
        inner.push_int(1).push_int(2);
        let mut o = JsonObject::new();
        o.raw("xs", &inner.finish());
        let mut outer = JsonObject::new();
        outer.raw("inner", &o.finish());
        assert_eq!(outer.finish(), r#"{"inner":{"xs":[1,2]}}"#);
    }

    #[test]
    fn keys_are_escaped_too() {
        let mut o = JsonObject::new();
        o.int("a\"b", 1);
        assert_eq!(o.finish(), r#"{"a\"b":1}"#);
    }
}
