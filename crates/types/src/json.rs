//! A tiny JSON *writer*.
//!
//! The pipeline only ever serializes — bench records, table/figure
//! dumps, experiment snapshots; nothing in the tree deserializes. So
//! instead of a serialization framework this module offers two small
//! push-style builders, [`JsonObject`] and [`JsonArray`], that emit
//! spec-compliant JSON text (escaped strings, `null` for non-finite
//! floats, no trailing commas). Writers that must not paper over a
//! NaN with `null` close with `try_finish`, which returns the typed
//! [`JsonError`] latched at write time.
//!
//! # Examples
//!
//! ```
//! use sclog_types::json::JsonObject;
//!
//! let mut rec = JsonObject::new();
//! rec.str("name", "filter_spirit/simultaneous")
//!     .int("iters", 20)
//!     .num("ns_per_iter", 1312.5);
//! assert_eq!(
//!     rec.finish(),
//!     r#"{"name":"filter_spirit/simultaneous","iters":20,"ns_per_iter":1312.5}"#
//! );
//! ```

use std::fmt::Write as _;

/// A write-time error latched by a builder and reported by
/// [`JsonObject::try_finish`] / [`JsonArray::try_finish`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsonError {
    /// A NaN or infinite float was written. JSON has no spelling for
    /// these; the lenient `finish` path emits `null`, the strict
    /// `try_finish` path refuses the whole document.
    NonFinite {
        /// The object key or array index the value was written under.
        at: String,
    },
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JsonError::NonFinite { at } => {
                write!(
                    f,
                    "non-finite float written at {at:?} (JSON has no NaN/Infinity)"
                )
            }
        }
    }
}

impl std::error::Error for JsonError {}

/// Checks that `s` is one complete, syntactically valid JSON value.
///
/// A minimal recursive-descent validator (no value construction, no
/// number range checks beyond JSON's grammar) so tests and the
/// `--obs-smoke` gate can prove emitted documents parse without a
/// registry JSON crate. Returns the byte offset and a short message
/// for the first error.
///
/// # Examples
///
/// ```
/// use sclog_types::json::validate;
///
/// assert!(validate(r#"{"a":[1,2.5e3,null,"x\n"]}"#).is_ok());
/// assert!(validate(r#"{"a":}"#).is_err());
/// ```
pub fn validate(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut pos = 0usize;
    skip_ws(b, &mut pos);
    parse_value(b, &mut pos)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected {lit:?} at byte {}", *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    match b.get(*pos) {
        None => Err("unexpected end of input".to_owned()),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => parse_string(b, pos),
        Some(b't') => expect(b, pos, "true"),
        Some(b'f') => expect(b, pos, "false"),
        Some(b'n') => expect(b, pos, "null"),
        Some(c) if *c == b'-' || c.is_ascii_digit() => parse_number(b, pos),
        Some(c) => Err(format!("unexpected byte {c:?} at {}", *pos)),
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, ":")?;
        skip_ws(b, pos);
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {}", *pos));
    }
    *pos += 1;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            if !b.get(*pos).is_some_and(u8::is_ascii_hexdigit) {
                                return Err(format!("bad \\u escape at byte {}", *pos));
                            }
                            *pos += 1;
                        }
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
            }
            0x00..=0x1f => return Err(format!("raw control byte in string at {}", *pos)),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_owned())
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits = |b: &[u8], pos: &mut usize| {
        let s = *pos;
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
        *pos > s
    };
    if !digits(b, pos) {
        return Err(format!("bad number at byte {start}"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !digits(b, pos) {
            return Err(format!("bad fraction at byte {}", *pos));
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !digits(b, pos) {
            return Err(format!("bad exponent at byte {}", *pos));
        }
    }
    Ok(())
}

/// Escapes `s` as JSON string contents (no surrounding quotes) onto
/// `out`.
pub fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Writes a number the way JSON requires: non-finite values become
/// `null` (JSON has no NaN/Infinity).
fn push_num(v: f64, out: &mut String) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

fn push_str(s: &str, out: &mut String) {
    out.push('"');
    escape_into(s, out);
    out.push('"');
}

/// Builder for a JSON object. Fields are emitted in insertion order.
#[derive(Debug, Clone, Default)]
pub struct JsonObject {
    buf: String,
    /// First write-time error, latched for [`JsonObject::try_finish`].
    err: Option<JsonError>,
}

impl JsonObject {
    /// Starts an empty object.
    pub fn new() -> Self {
        JsonObject {
            buf: String::from("{"),
            err: None,
        }
    }

    fn key(&mut self, name: &str) -> &mut Self {
        if self.buf.len() > 1 {
            self.buf.push(',');
        }
        push_str(name, &mut self.buf);
        self.buf.push(':');
        self
    }

    /// Adds a string field.
    pub fn str(&mut self, name: &str, value: &str) -> &mut Self {
        self.key(name);
        push_str(value, &mut self.buf);
        self
    }

    /// Adds an integer field.
    pub fn int(&mut self, name: &str, value: i64) -> &mut Self {
        self.key(name);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Adds an unsigned integer field.
    pub fn uint(&mut self, name: &str, value: u64) -> &mut Self {
        self.key(name);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Adds a float field (`null` if non-finite; a non-finite value
    /// also latches the error [`JsonObject::try_finish`] reports).
    pub fn num(&mut self, name: &str, value: f64) -> &mut Self {
        if !value.is_finite() && self.err.is_none() {
            self.err = Some(JsonError::NonFinite {
                at: name.to_owned(),
            });
        }
        self.key(name);
        push_num(value, &mut self.buf);
        self
    }

    /// Adds a boolean field.
    pub fn bool(&mut self, name: &str, value: bool) -> &mut Self {
        self.key(name);
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Adds a pre-rendered JSON value verbatim (e.g. a nested object or
    /// array from another builder).
    pub fn raw(&mut self, name: &str, json: &str) -> &mut Self {
        self.key(name);
        self.buf.push_str(json);
        self
    }

    /// Closes the object and returns the JSON text.
    pub fn finish(&self) -> String {
        let mut out = self.buf.clone();
        out.push('}');
        out
    }

    /// Closes the object like [`JsonObject::finish`], but returns the
    /// first write-time error instead of papering over it — the strict
    /// path for documents a machine will read back, where a silent
    /// `null` in place of a NaN would corrupt the record.
    ///
    /// # Errors
    ///
    /// [`JsonError::NonFinite`] if any [`JsonObject::num`] call wrote a
    /// NaN or infinity.
    pub fn try_finish(&self) -> Result<String, JsonError> {
        match &self.err {
            Some(e) => Err(e.clone()),
            None => Ok(self.finish()),
        }
    }
}

/// Builder for a JSON array.
#[derive(Debug, Clone, Default)]
pub struct JsonArray {
    buf: String,
    /// Elements pushed so far (names the index in error reports).
    len: usize,
    /// First write-time error, latched for [`JsonArray::try_finish`].
    err: Option<JsonError>,
}

impl JsonArray {
    /// Starts an empty array.
    pub fn new() -> Self {
        JsonArray {
            buf: String::from("["),
            len: 0,
            err: None,
        }
    }

    fn sep(&mut self) -> &mut Self {
        if self.buf.len() > 1 {
            self.buf.push(',');
        }
        self.len += 1;
        self
    }

    /// Appends a string element.
    pub fn push_str(&mut self, value: &str) -> &mut Self {
        self.sep();
        push_str(value, &mut self.buf);
        self
    }

    /// Appends an integer element.
    pub fn push_int(&mut self, value: i64) -> &mut Self {
        self.sep();
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Appends a float element (`null` if non-finite; a non-finite
    /// value also latches the error [`JsonArray::try_finish`] reports).
    pub fn push_num(&mut self, value: f64) -> &mut Self {
        if !value.is_finite() && self.err.is_none() {
            self.err = Some(JsonError::NonFinite {
                at: format!("[{}]", self.len),
            });
        }
        self.sep();
        push_num(value, &mut self.buf);
        self
    }

    /// Appends a pre-rendered JSON value verbatim.
    pub fn push_raw(&mut self, json: &str) -> &mut Self {
        self.sep();
        self.buf.push_str(json);
        self
    }

    /// Closes the array and returns the JSON text.
    pub fn finish(&self) -> String {
        let mut out = self.buf.clone();
        out.push(']');
        out
    }

    /// Closes the array like [`JsonArray::finish`], but returns the
    /// first write-time error instead of papering over it.
    ///
    /// # Errors
    ///
    /// [`JsonError::NonFinite`] if any [`JsonArray::push_num`] call
    /// wrote a NaN or infinity.
    pub fn try_finish(&self) -> Result<String, JsonError> {
        match &self.err {
            Some(e) => Err(e.clone()),
            None => Ok(self.finish()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_object_and_array() {
        assert_eq!(JsonObject::new().finish(), "{}");
        assert_eq!(JsonArray::new().finish(), "[]");
    }

    #[test]
    fn field_kinds_and_order() {
        let mut o = JsonObject::new();
        o.str("s", "x")
            .int("i", -3)
            .uint("u", 7)
            .num("f", 1.25)
            .bool("b", true);
        assert_eq!(o.finish(), r#"{"s":"x","i":-3,"u":7,"f":1.25,"b":true}"#);
    }

    #[test]
    fn escaping() {
        let mut o = JsonObject::new();
        o.str("k", "a\"b\\c\nd\te\u{1}");
        assert_eq!(o.finish(), r#"{"k":"a\"b\\c\nd\te\u0001"}"#);
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut a = JsonArray::new();
        a.push_num(f64::NAN).push_num(f64::INFINITY).push_num(0.5);
        assert_eq!(a.finish(), "[null,null,0.5]");
    }

    #[test]
    fn try_finish_rejects_non_finite_object_fields() {
        let mut o = JsonObject::new();
        o.num("ok", 1.5);
        assert_eq!(o.try_finish().unwrap(), r#"{"ok":1.5}"#);
        o.num("rate", f64::NAN).num("late", f64::NEG_INFINITY);
        let err = o.try_finish().unwrap_err();
        assert_eq!(
            err,
            JsonError::NonFinite { at: "rate".into() },
            "first offender is the one reported"
        );
        assert!(err.to_string().contains("rate"), "{err}");
        // The lenient path still renders, with null in place.
        assert_eq!(o.finish(), r#"{"ok":1.5,"rate":null,"late":null}"#);
    }

    #[test]
    fn try_finish_rejects_non_finite_array_elements() {
        let mut a = JsonArray::new();
        a.push_num(0.5).push_int(2);
        assert_eq!(a.try_finish().unwrap(), "[0.5,2]");
        a.push_num(f64::INFINITY);
        assert_eq!(
            a.try_finish().unwrap_err(),
            JsonError::NonFinite { at: "[2]".into() },
            "error names the element index"
        );
    }

    #[test]
    fn nesting_via_raw() {
        let mut inner = JsonArray::new();
        inner.push_int(1).push_int(2);
        let mut o = JsonObject::new();
        o.raw("xs", &inner.finish());
        let mut outer = JsonObject::new();
        outer.raw("inner", &o.finish());
        assert_eq!(outer.finish(), r#"{"inner":{"xs":[1,2]}}"#);
    }

    #[test]
    fn keys_are_escaped_too() {
        let mut o = JsonObject::new();
        o.int("a\"b", 1);
        assert_eq!(o.finish(), r#"{"a\"b":1}"#);
    }

    #[test]
    fn validate_accepts_what_the_writer_emits() {
        let mut inner = JsonArray::new();
        inner.push_num(f64::NAN).push_int(-3).push_str("x\n\"y\\");
        let mut o = JsonObject::new();
        o.raw("xs", &inner.finish())
            .num("f", 1.25e-3)
            .bool("b", false)
            .str("esc", "ctl\u{1}");
        validate(&o.finish()).expect("writer output must validate");
    }

    #[test]
    fn validate_accepts_scalars_and_whitespace() {
        for ok in [
            "0",
            "-12.5e+3",
            "true",
            "false",
            "null",
            r#""""#,
            " [ 1 , { \"a\" : [] } ] ",
            "{}",
        ] {
            validate(ok).unwrap_or_else(|e| panic!("{ok:?}: {e}"));
        }
    }

    #[test]
    fn validate_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            r#"{"a":}"#,
            r#"{"a":1,}"#,
            r#"{'a':1}"#,
            "01e",
            "1 2",
            "nul",
            r#""unterminated"#,
            "\"raw\ncontrol\"",
            r#""bad \x escape""#,
            r#""bad \u12g4""#,
            "[1",
            "-",
            "1.",
            "1e",
        ] {
            assert!(validate(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn validate_flags_unescaped_control_characters() {
        // Every raw control byte (0x00..=0x1F) inside a string is a
        // spec violation; the same characters escaped are fine.
        for byte in 0x00u8..=0x1f {
            let doc = format!("\"ctl{}here\"", byte as char);
            let err = validate(&doc).expect_err(&format!("raw {byte:#04x} accepted"));
            assert!(err.contains("control"), "{byte:#04x}: {err}");
            let escaped = format!("\"ctl\\u{byte:04x}here\"");
            validate(&escaped).unwrap_or_else(|e| panic!("{escaped:?}: {e}"));
        }
        // Outside a string the same bytes are plain syntax errors, not
        // string-content errors (0x09/0x0a/0x0d are whitespace there).
        assert!(validate("\u{1}").is_err());
    }
}
