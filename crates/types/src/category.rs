//! Alert categories.
//!
//! Per Section 3.2 of the paper, "two alerts are in the same category if
//! they were tagged by the same expert rule". Categories are therefore
//! per-system rule names such as `KERNDTLB` (BG/L) or `PBS_CHK`
//! (Liberty/Spirit). The paper observes 77 categories in total across
//! the five logs (Table 2's "Categories" column).

use crate::alert::AlertType;
use crate::system::SystemId;
use std::collections::HashMap;
use std::fmt;

/// Compact identifier for an alert category within a [`CategoryRegistry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CategoryId(u16);

impl CategoryId {
    /// The raw index value.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Constructs a `CategoryId` from a raw index.
    ///
    /// Only meaningful with the registry that produced the index.
    pub const fn from_index(index: u16) -> Self {
        CategoryId(index)
    }
}

impl fmt::Display for CategoryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cat#{}", self.0)
    }
}

/// Definition of one alert category: the expert rule's name, the system
/// it applies to, and the administrator-assigned subsystem type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CategoryDef {
    /// Rule/category name as printed in Table 4 (e.g. `KERNDTLB`).
    pub name: String,
    /// The system whose ruleset defines this category.
    pub system: SystemId,
    /// Hardware / Software / Indeterminate, per the administrator's best
    /// understanding ("may not necessarily be root cause").
    pub alert_type: AlertType,
}

/// Registry of alert categories across all systems.
///
/// # Examples
///
/// ```
/// use sclog_types::{AlertType, CategoryRegistry, SystemId};
///
/// let mut reg = CategoryRegistry::new();
/// let id = reg.register("PBS_CHK", SystemId::Liberty, AlertType::Software);
/// assert_eq!(reg.def(id).name, "PBS_CHK");
/// assert_eq!(reg.lookup(SystemId::Liberty, "PBS_CHK"), Some(id));
/// assert_eq!(reg.lookup(SystemId::Spirit, "PBS_CHK"), None);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CategoryRegistry {
    defs: Vec<CategoryDef>,
    index: HashMap<(SystemId, String), CategoryId>,
}

impl CategoryRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a category, returning its id. Re-registering the same
    /// `(system, name)` pair returns the existing id.
    ///
    /// # Panics
    ///
    /// Panics if the same `(system, name)` is re-registered with a
    /// different [`AlertType`] — a category's type is part of the expert
    /// rule and must be consistent.
    pub fn register(&mut self, name: &str, system: SystemId, alert_type: AlertType) -> CategoryId {
        if let Some(&id) = self.index.get(&(system, name.to_owned())) {
            assert_eq!(
                self.defs[id.index()].alert_type,
                alert_type,
                "category {name} on {system} re-registered with a different type"
            );
            return id;
        }
        let id = CategoryId(u16::try_from(self.defs.len()).expect("more than u16::MAX categories"));
        self.defs.push(CategoryDef {
            name: name.to_owned(),
            system,
            alert_type,
        });
        self.index.insert((system, name.to_owned()), id);
        id
    }

    /// The definition for an id.
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this registry.
    pub fn def(&self, id: CategoryId) -> &CategoryDef {
        &self.defs[id.index()]
    }

    /// Short display name for an id (the rule name).
    pub fn name(&self, id: CategoryId) -> &str {
        &self.def(id).name
    }

    /// Finds the id for a `(system, name)` pair.
    pub fn lookup(&self, system: SystemId, name: &str) -> Option<CategoryId> {
        self.index.get(&(system, name.to_owned())).copied()
    }

    /// Number of registered categories.
    pub fn len(&self) -> usize {
        self.defs.len()
    }

    /// True if no categories are registered.
    pub fn is_empty(&self) -> bool {
        self.defs.is_empty()
    }

    /// Iterates over `(id, def)` pairs in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (CategoryId, &CategoryDef)> + '_ {
        self.defs
            .iter()
            .enumerate()
            .map(|(i, d)| (CategoryId(i as u16), d))
    }

    /// Iterates over the categories belonging to one system.
    pub fn for_system(
        &self,
        system: SystemId,
    ) -> impl Iterator<Item = (CategoryId, &CategoryDef)> + '_ {
        self.iter().filter(move |(_, d)| d.system == system)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_is_idempotent() {
        let mut reg = CategoryRegistry::new();
        let a = reg.register("VAPI", SystemId::Thunderbird, AlertType::Indeterminate);
        let b = reg.register("VAPI", SystemId::Thunderbird, AlertType::Indeterminate);
        assert_eq!(a, b);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn same_name_different_system_is_distinct() {
        // PBS_CHK exists on both Liberty and Spirit in Table 4.
        let mut reg = CategoryRegistry::new();
        let lib = reg.register("PBS_CHK", SystemId::Liberty, AlertType::Software);
        let spi = reg.register("PBS_CHK", SystemId::Spirit, AlertType::Software);
        assert_ne!(lib, spi);
        assert_eq!(reg.lookup(SystemId::Liberty, "PBS_CHK"), Some(lib));
        assert_eq!(reg.lookup(SystemId::Spirit, "PBS_CHK"), Some(spi));
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn conflicting_type_panics() {
        let mut reg = CategoryRegistry::new();
        reg.register("ECC", SystemId::Thunderbird, AlertType::Hardware);
        reg.register("ECC", SystemId::Thunderbird, AlertType::Software);
    }

    #[test]
    fn for_system_filters() {
        let mut reg = CategoryRegistry::new();
        reg.register("A", SystemId::Liberty, AlertType::Hardware);
        reg.register("B", SystemId::Spirit, AlertType::Software);
        reg.register("C", SystemId::Liberty, AlertType::Software);
        let liberty: Vec<_> = reg
            .for_system(SystemId::Liberty)
            .map(|(_, d)| d.name.as_str())
            .collect();
        assert_eq!(liberty, vec!["A", "C"]);
    }

    #[test]
    fn display() {
        assert_eq!(CategoryId::from_index(3).to_string(), "cat#3");
    }
}
