//! Microsecond-resolution timestamps and durations.
//!
//! The paper's logs span two time granularities: BG/L's RAS database
//! records microseconds, while the syslog-based systems record whole
//! seconds. [`Timestamp`] stores microseconds since the Unix epoch (UTC)
//! in an `i64`, which covers the years 1678–2262 — far more than the
//! 2004–2006 observation windows in Table 2.
//!
//! Civil-time conversion uses the classic days-from-civil algorithm, so
//! the crate needs no external date dependency. All conversions are UTC;
//! the study does not require local-time handling.

use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// Microseconds in one second.
pub const MICROS_PER_SEC: i64 = 1_000_000;

/// A span of time with microsecond resolution.
///
/// # Examples
///
/// ```
/// use sclog_types::Duration;
///
/// let t = Duration::from_secs(5);
/// assert_eq!(t.as_micros(), 5_000_000);
/// assert_eq!(t * 2, Duration::from_secs(10));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(i64);

impl Duration {
    /// The zero-length duration.
    pub const ZERO: Duration = Duration(0);

    /// Creates a duration from whole seconds.
    pub const fn from_secs(secs: i64) -> Self {
        Duration(secs * MICROS_PER_SEC)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: i64) -> Self {
        Duration(ms * 1000)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: i64) -> Self {
        Duration(us)
    }

    /// Creates a duration from whole minutes.
    pub const fn from_mins(mins: i64) -> Self {
        Duration::from_secs(mins * 60)
    }

    /// Creates a duration from whole hours.
    pub const fn from_hours(hours: i64) -> Self {
        Duration::from_secs(hours * 3600)
    }

    /// Creates a duration from whole days.
    pub const fn from_days(days: i64) -> Self {
        Duration::from_secs(days * 86_400)
    }

    /// The duration in microseconds.
    pub const fn as_micros(self) -> i64 {
        self.0
    }

    /// The duration in whole seconds (truncated toward zero).
    pub const fn as_secs(self) -> i64 {
        self.0 / MICROS_PER_SEC
    }

    /// The duration in seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Creates a duration from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is not finite or overflows the microsecond range.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite(), "duration seconds must be finite");
        let us = secs * MICROS_PER_SEC as f64;
        assert!(
            us >= i64::MIN as f64 && us <= i64::MAX as f64,
            "duration out of range"
        );
        Duration(us as i64)
    }

    /// True if this duration is negative.
    pub const fn is_negative(self) -> bool {
        self.0 < 0
    }

    /// Absolute value of the duration.
    pub const fn abs(self) -> Self {
        Duration(self.0.abs())
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl std::ops::Mul<i64> for Duration {
    type Output = Duration;
    fn mul(self, rhs: i64) -> Duration {
        Duration(self.0 * rhs)
    }
}

impl std::ops::Div<i64> for Duration {
    type Output = Duration;
    fn div(self, rhs: i64) -> Duration {
        Duration(self.0 / rhs)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

/// An instant in time: microseconds since the Unix epoch, UTC.
///
/// # Examples
///
/// ```
/// use sclog_types::{Duration, Timestamp};
///
/// let t = Timestamp::from_ymd_hms(2005, 1, 1, 0, 0, 0);
/// let later = t + Duration::from_days(1);
/// assert_eq!(later - t, Duration::from_days(1));
/// assert_eq!(later.to_syslog_string(), "Jan  2 00:00:00");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(i64);

impl Timestamp {
    /// The Unix epoch (1970-01-01T00:00:00Z).
    pub const EPOCH: Timestamp = Timestamp(0);

    /// Creates a timestamp from microseconds since the Unix epoch.
    pub const fn from_micros(us: i64) -> Self {
        Timestamp(us)
    }

    /// Creates a timestamp from whole seconds since the Unix epoch.
    pub const fn from_secs(secs: i64) -> Self {
        Timestamp(secs * MICROS_PER_SEC)
    }

    /// Creates a timestamp from a UTC civil date and time.
    ///
    /// # Panics
    ///
    /// Panics if the month or day is out of range.
    pub fn from_ymd_hms(year: i32, month: u32, day: u32, hour: u32, min: u32, sec: u32) -> Self {
        assert!((1..=12).contains(&month), "month out of range: {month}");
        assert!(
            day >= 1 && day <= days_in_month(year, month),
            "day out of range: {year}-{month}-{day}"
        );
        assert!(hour < 24 && min < 60 && sec < 60, "time out of range");
        let days = days_from_civil(year, month, day);
        Timestamp::from_secs(days * 86_400 + (hour as i64) * 3600 + (min as i64) * 60 + sec as i64)
    }

    /// Microseconds since the Unix epoch.
    pub const fn as_micros(self) -> i64 {
        self.0
    }

    /// Whole seconds since the Unix epoch (floor).
    pub const fn as_secs(self) -> i64 {
        self.0.div_euclid(MICROS_PER_SEC)
    }

    /// The microsecond-of-second component, in `0..1_000_000`.
    pub const fn subsec_micros(self) -> u32 {
        self.0.rem_euclid(MICROS_PER_SEC) as u32
    }

    /// Truncates to whole-second resolution (as syslog timestamps do).
    pub const fn truncate_to_secs(self) -> Self {
        Timestamp(self.as_secs() * MICROS_PER_SEC)
    }

    /// Decomposes into UTC civil `(year, month, day, hour, minute, second)`.
    pub fn to_civil(self) -> (i32, u32, u32, u32, u32, u32) {
        let secs = self.as_secs();
        let days = secs.div_euclid(86_400);
        let sod = secs.rem_euclid(86_400);
        let (y, m, d) = civil_from_days(days);
        (
            y,
            m,
            d,
            (sod / 3600) as u32,
            (sod % 3600 / 60) as u32,
            (sod % 60) as u32,
        )
    }

    /// Renders in classic BSD syslog form, e.g. `Jan  2 15:04:05`.
    ///
    /// Note that syslog omits the year; parsers must recover it from
    /// context, one of the log-format headaches Section 3.2.1 of the
    /// paper describes.
    pub fn to_syslog_string(self) -> String {
        let mut out = String::new();
        self.write_syslog(&mut out);
        out
    }

    /// Appends the syslog form to `out` without allocating — the
    /// buffer-reuse path the per-message tagging loop renders through.
    pub fn write_syslog(self, out: &mut String) {
        use fmt::Write as _;
        let (_, m, d, hh, mm, ss) = self.to_civil();
        let _ = write!(out, "{} {d:>2} {hh:02}:{mm:02}:{ss:02}", month_abbrev(m));
    }

    /// Renders in the BG/L RAS form, e.g. `2005-06-03-15.42.50.363779`.
    pub fn to_bgl_string(self) -> String {
        let mut out = String::new();
        self.write_bgl(&mut out);
        out
    }

    /// Appends the BG/L RAS form to `out` without allocating.
    pub fn write_bgl(self, out: &mut String) {
        use fmt::Write as _;
        let (y, m, d, hh, mm, ss) = self.to_civil();
        let _ = write!(
            out,
            "{y:04}-{m:02}-{d:02}-{hh:02}.{mm:02}.{ss:02}.{:06}",
            self.subsec_micros()
        );
    }

    /// Renders as an ISO-8601-like string, e.g. `2005-06-03 15:42:50`.
    pub fn to_iso_string(self) -> String {
        let (y, m, d, hh, mm, ss) = self.to_civil();
        format!("{y:04}-{m:02}-{d:02} {hh:02}:{mm:02}:{ss:02}")
    }

    /// Saturating addition of a duration.
    pub fn saturating_add(self, d: Duration) -> Self {
        Timestamp(self.0.saturating_add(d.as_micros()))
    }
}

impl Add<Duration> for Timestamp {
    type Output = Timestamp;
    fn add(self, rhs: Duration) -> Timestamp {
        Timestamp(self.0 + rhs.as_micros())
    }
}

impl AddAssign<Duration> for Timestamp {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.as_micros();
    }
}

impl Sub<Duration> for Timestamp {
    type Output = Timestamp;
    fn sub(self, rhs: Duration) -> Timestamp {
        Timestamp(self.0 - rhs.as_micros())
    }
}

impl SubAssign<Duration> for Timestamp {
    fn sub_assign(&mut self, rhs: Duration) {
        self.0 -= rhs.as_micros();
    }
}

impl Sub for Timestamp {
    type Output = Duration;
    fn sub(self, rhs: Timestamp) -> Duration {
        Duration::from_micros(self.0 - rhs.0)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_iso_string())
    }
}

/// Month abbreviation as used by syslog (`Jan` … `Dec`).
///
/// # Panics
///
/// Panics if `month` is not in `1..=12`.
pub fn month_abbrev(month: u32) -> &'static str {
    const NAMES: [&str; 12] = [
        "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
    ];
    NAMES[(month - 1) as usize]
}

/// Parses a syslog month abbreviation back to `1..=12`.
pub fn month_from_abbrev(s: &str) -> Option<u32> {
    const NAMES: [&str; 12] = [
        "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
    ];
    NAMES.iter().position(|&n| n == s).map(|i| i as u32 + 1)
}

/// True if `year` is a Gregorian leap year.
pub fn is_leap_year(year: i32) -> bool {
    year % 4 == 0 && (year % 100 != 0 || year % 400 == 0)
}

/// Days in the given month of the given year.
///
/// # Panics
///
/// Panics if `month` is not in `1..=12`.
pub fn days_in_month(year: i32, month: u32) -> u32 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap_year(year) {
                29
            } else {
                28
            }
        }
        _ => panic!("month out of range: {month}"),
    }
}

/// Days since the Unix epoch for a civil date (Hinnant's algorithm).
fn days_from_civil(y: i32, m: u32, d: u32) -> i64 {
    let y = i64::from(y) - i64::from(m <= 2);
    let era = y.div_euclid(400);
    let yoe = y - era * 400; // [0, 399]
    let mp = i64::from((m + 9) % 12); // [0, 11]
    let doy = (153 * mp + 2) / 5 + i64::from(d) - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468
}

/// Civil date from days since the Unix epoch (inverse of `days_from_civil`).
fn civil_from_days(z: i64) -> (i32, u32, u32) {
    let z = z + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    ((y + i64::from(m <= 2)) as i32, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_1970() {
        assert_eq!(Timestamp::EPOCH.to_civil(), (1970, 1, 1, 0, 0, 0));
    }

    #[test]
    fn known_dates_round_trip() {
        // Start dates from Table 2 of the paper.
        let cases = [
            (2005, 6, 3),   // BG/L
            (2005, 11, 9),  // Thunderbird
            (2006, 3, 19),  // Red Storm
            (2005, 1, 1),   // Spirit
            (2004, 12, 12), // Liberty
            (2000, 2, 29),  // leap day
            (1999, 12, 31),
        ];
        for (y, m, d) in cases {
            let t = Timestamp::from_ymd_hms(y, m, d, 13, 14, 15);
            assert_eq!(t.to_civil(), (y, m, d, 13, 14, 15));
        }
    }

    #[test]
    fn syslog_format_pads_day() {
        let t = Timestamp::from_ymd_hms(2005, 1, 2, 3, 4, 5);
        assert_eq!(t.to_syslog_string(), "Jan  2 03:04:05");
        let t = Timestamp::from_ymd_hms(2005, 11, 12, 3, 4, 5);
        assert_eq!(t.to_syslog_string(), "Nov 12 03:04:05");
    }

    #[test]
    fn bgl_format_has_micros() {
        let t = Timestamp::from_ymd_hms(2005, 6, 3, 15, 42, 50) + Duration::from_micros(363_779);
        assert_eq!(t.to_bgl_string(), "2005-06-03-15.42.50.363779");
    }

    #[test]
    fn arithmetic() {
        let t = Timestamp::from_secs(100);
        assert_eq!((t + Duration::from_secs(5)) - t, Duration::from_secs(5));
        assert_eq!(t - Duration::from_secs(5), Timestamp::from_secs(95));
        let mut u = t;
        u += Duration::from_secs(1);
        assert_eq!(u, Timestamp::from_secs(101));
        u -= Duration::from_secs(2);
        assert_eq!(u, Timestamp::from_secs(99));
    }

    #[test]
    fn negative_times_floor_correctly() {
        let t = Timestamp::from_micros(-1);
        assert_eq!(t.as_secs(), -1);
        assert_eq!(t.subsec_micros(), 999_999);
        assert_eq!(t.to_civil(), (1969, 12, 31, 23, 59, 59));
    }

    #[test]
    fn truncate_to_secs_drops_micros() {
        let t = Timestamp::from_micros(1_500_000);
        assert_eq!(t.truncate_to_secs(), Timestamp::from_secs(1));
    }

    #[test]
    fn leap_years() {
        assert!(is_leap_year(2000));
        assert!(is_leap_year(2004));
        assert!(!is_leap_year(1900));
        assert!(!is_leap_year(2005));
        assert_eq!(days_in_month(2004, 2), 29);
        assert_eq!(days_in_month(2005, 2), 28);
    }

    #[test]
    fn month_abbrev_round_trip() {
        for m in 1..=12 {
            assert_eq!(month_from_abbrev(month_abbrev(m)), Some(m));
        }
        assert_eq!(month_from_abbrev("Foo"), None);
    }

    #[test]
    fn duration_conversions() {
        assert_eq!(Duration::from_days(1).as_secs(), 86_400);
        assert_eq!(Duration::from_hours(2).as_secs(), 7200);
        assert_eq!(Duration::from_mins(3).as_secs(), 180);
        assert_eq!(Duration::from_millis(1500).as_micros(), 1_500_000);
        assert!((Duration::from_secs_f64(0.5).as_micros() - 500_000).abs() <= 1);
        assert!(Duration::from_secs(-1).is_negative());
        assert_eq!(Duration::from_secs(-1).abs(), Duration::from_secs(1));
    }

    #[test]
    fn duration_display() {
        assert_eq!(Duration::from_secs(5).to_string(), "5.000000s");
    }

    #[test]
    #[should_panic(expected = "month out of range")]
    fn bad_month_panics() {
        let _ = Timestamp::from_ymd_hms(2005, 13, 1, 0, 0, 0);
    }

    #[test]
    #[should_panic(expected = "day out of range")]
    fn bad_day_panics() {
        let _ = Timestamp::from_ymd_hms(2005, 2, 29, 0, 0, 0);
    }
}
