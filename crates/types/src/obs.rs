//! Report schema for the observability layer.
//!
//! The recorder and the instrumentation live in the `sclog-obs` crate;
//! this module only defines the *vocabulary* of a run report — stage
//! waterfall rows, per-worker rollups, counters, gauges, histograms —
//! and their JSON rendering on top of [`crate::json`], so any crate
//! (and the `--obs-smoke` verification gate) can speak the same schema
//! without depending on the recorder.
//!
//! All durations are nanoseconds; all byte and item counts are totals
//! over the run. A report is a snapshot: it describes one pipeline run
//! from recorder creation to the snapshot instant (`wall_ns`).

use crate::json::{JsonArray, JsonObject};

/// One pipeline stage's row in the run-report waterfall.
///
/// `wall_ns` is the stage's active window (first span start to last
/// span end, across every thread that ran the stage); `busy_ns` is the
/// summed span time actually spent working and `wait_ns` the summed
/// time blocked on a queue (waiting for a permit, a job, or a result).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageObs {
    /// Stage name (e.g. `produce`, `tag`, `filter`).
    pub name: String,
    /// Active window: last span end minus first span start.
    pub wall_ns: u64,
    /// Total time inside working spans, summed over threads.
    pub busy_ns: u64,
    /// Total time inside queue-wait spans, summed over threads.
    pub wait_ns: u64,
    /// Items (messages/lines/alerts) the stage processed.
    pub items: u64,
    /// Bytes the stage processed, when meaningful (0 otherwise).
    pub bytes: u64,
    /// Number of working spans (batches/jobs).
    pub spans: u64,
}

impl StageObs {
    /// Renders the stage as a JSON object.
    pub fn to_json(&self) -> String {
        let mut o = JsonObject::new();
        o.str("name", &self.name)
            .uint("wall_ns", self.wall_ns)
            .uint("busy_ns", self.busy_ns)
            .uint("wait_ns", self.wait_ns)
            .uint("items", self.items)
            .uint("bytes", self.bytes)
            .uint("spans", self.spans);
        o.finish()
    }
}

/// Per-thread rollup: everything one recorded thread (a `TagPool`
/// worker, the producer, the consumer) did across all stages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerObs {
    /// The label the thread registered under (e.g. `tagger/0`).
    pub label: String,
    /// The thread's active window (first to last span).
    pub wall_ns: u64,
    /// Summed working-span time.
    pub busy_ns: u64,
    /// Summed queue-wait time.
    pub wait_ns: u64,
    /// Items processed.
    pub items: u64,
    /// Working spans completed (jobs, for pool workers).
    pub jobs: u64,
}

impl WorkerObs {
    /// Busy fraction of the thread's active window (0 when idle).
    pub fn utilization(&self) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            self.busy_ns as f64 / self.wall_ns as f64
        }
    }

    /// Renders the worker rollup as a JSON object.
    pub fn to_json(&self) -> String {
        let mut o = JsonObject::new();
        o.str("label", &self.label)
            .uint("wall_ns", self.wall_ns)
            .uint("busy_ns", self.busy_ns)
            .uint("wait_ns", self.wait_ns)
            .uint("items", self.items)
            .uint("jobs", self.jobs)
            .num("utilization", self.utilization());
        o.finish()
    }
}

/// One named counter's total.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterObs {
    /// Counter name (dotted, e.g. `tagger.prefilter.vm_execs`).
    pub name: String,
    /// Merged total across threads.
    pub value: u64,
}

impl CounterObs {
    /// Renders the counter as a JSON object.
    pub fn to_json(&self) -> String {
        let mut o = JsonObject::new();
        o.str("name", &self.name).uint("value", self.value);
        o.finish()
    }
}

/// One up/down gauge with its observed peak and configured bound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GaugeObs {
    /// Gauge name (e.g. `pipeline.in_flight_batches`).
    pub name: String,
    /// Value at snapshot time (0 after a drained run).
    pub current: u64,
    /// Highest value observed over the run.
    pub peak: u64,
    /// The configured hard bound, when the gauge has one.
    pub bound: Option<u64>,
}

impl GaugeObs {
    /// Renders the gauge as a JSON object.
    pub fn to_json(&self) -> String {
        let mut o = JsonObject::new();
        o.str("name", &self.name)
            .uint("current", self.current)
            .uint("peak", self.peak);
        if let Some(b) = self.bound {
            o.uint("bound", b);
        }
        o.finish()
    }
}

/// One occupied bucket of a log2 histogram: `count` observations were
/// `<= le` (and greater than the previous bucket's `le`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BucketObs {
    /// Inclusive upper bound of the bucket (`2^k - 1`).
    pub le: u64,
    /// Observations that fell in this bucket.
    pub count: u64,
}

/// One named log2-bucket histogram of durations or sizes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramObs {
    /// Histogram name (e.g. `tagger.job_ns`).
    pub name: String,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Occupied buckets in ascending `le` order.
    pub buckets: Vec<BucketObs>,
}

impl HistogramObs {
    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing quantile `q` in `[0, 1]`
    /// (`None` when the histogram is empty) — a coarse quantile, exact
    /// only up to the log2 bucketing.
    pub fn quantile_le(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for b in &self.buckets {
            seen += b.count;
            if seen >= rank {
                return Some(b.le);
            }
        }
        self.buckets.last().map(|b| b.le)
    }

    /// Renders the histogram as a JSON object.
    pub fn to_json(&self) -> String {
        let mut buckets = JsonArray::new();
        for b in &self.buckets {
            let mut o = JsonObject::new();
            o.uint("le", b.le).uint("count", b.count);
            buckets.push_raw(&o.finish());
        }
        let mut o = JsonObject::new();
        o.str("name", &self.name)
            .uint("count", self.count)
            .uint("sum", self.sum)
            .raw("buckets", &buckets.finish());
        o.finish()
    }
}

/// A full observability run report: the stage waterfall, per-thread
/// rollups, and every registered metric, merged across threads.
///
/// `coverage` is the report's self-check: the fraction of recorded
/// thread-time (each thread's first-span-to-last-span window) that is
/// attributed to a working or waiting span. A healthy report sits
/// near 1.0 — a low value means the instrumentation has a blind spot.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsReport {
    /// Wall time from recorder creation to snapshot.
    pub wall_ns: u64,
    /// Total span time (busy + wait) across all threads.
    pub attributed_ns: u64,
    /// `attributed_ns` over the summed per-thread active windows.
    pub coverage: f64,
    /// Per-stage waterfall rows.
    pub stages: Vec<StageObs>,
    /// Per-thread rollups.
    pub workers: Vec<WorkerObs>,
    /// Counter totals.
    pub counters: Vec<CounterObs>,
    /// Gauges with peaks and bounds.
    pub gauges: Vec<GaugeObs>,
    /// Histograms.
    pub histograms: Vec<HistogramObs>,
}

impl ObsReport {
    /// Looks up a counter total by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Looks up a stage row by name.
    pub fn stage(&self, name: &str) -> Option<&StageObs> {
        self.stages.iter().find(|s| s.name == name)
    }

    /// Looks up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<&GaugeObs> {
        self.gauges.iter().find(|g| g.name == name)
    }

    /// Renders the report as one JSON document.
    pub fn to_json(&self) -> String {
        let mut stages = JsonArray::new();
        for s in &self.stages {
            stages.push_raw(&s.to_json());
        }
        let mut workers = JsonArray::new();
        for w in &self.workers {
            workers.push_raw(&w.to_json());
        }
        let mut counters = JsonArray::new();
        for c in &self.counters {
            counters.push_raw(&c.to_json());
        }
        let mut gauges = JsonArray::new();
        for g in &self.gauges {
            gauges.push_raw(&g.to_json());
        }
        let mut histograms = JsonArray::new();
        for h in &self.histograms {
            histograms.push_raw(&h.to_json());
        }
        let mut o = JsonObject::new();
        o.str("schema", "sclog.obs.v1")
            .uint("wall_ns", self.wall_ns)
            .uint("attributed_ns", self.attributed_ns)
            .num("coverage", self.coverage)
            .raw("stages", &stages.finish())
            .raw("workers", &workers.finish())
            .raw("counters", &counters.finish())
            .raw("gauges", &gauges.finish())
            .raw("histograms", &histograms.finish());
        o.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn sample() -> ObsReport {
        ObsReport {
            wall_ns: 1_000,
            attributed_ns: 950,
            coverage: 0.95,
            stages: vec![StageObs {
                name: "tag".into(),
                wall_ns: 900,
                busy_ns: 700,
                wait_ns: 200,
                items: 64,
                bytes: 4096,
                spans: 2,
            }],
            workers: vec![WorkerObs {
                label: "tagger/0".into(),
                wall_ns: 900,
                busy_ns: 450,
                wait_ns: 450,
                items: 32,
                jobs: 1,
            }],
            counters: vec![CounterObs {
                name: "tagger.lines".into(),
                value: 64,
            }],
            gauges: vec![GaugeObs {
                name: "pipeline.in_flight_batches".into(),
                current: 0,
                peak: 3,
                bound: Some(6),
            }],
            histograms: vec![HistogramObs {
                name: "tagger.job_ns".into(),
                count: 2,
                sum: 700,
                buckets: vec![
                    BucketObs { le: 255, count: 1 },
                    BucketObs { le: 511, count: 1 },
                ],
            }],
        }
    }

    #[test]
    fn report_json_is_valid_and_carries_schema() {
        let j = sample().to_json();
        json::validate(&j).expect("report must be valid JSON");
        assert!(j.starts_with(r#"{"schema":"sclog.obs.v1""#), "{j}");
        for key in [
            "wall_ns",
            "attributed_ns",
            "coverage",
            "stages",
            "workers",
            "counters",
            "gauges",
            "histograms",
        ] {
            assert!(j.contains(&format!("\"{key}\":")), "missing {key}: {j}");
        }
    }

    #[test]
    fn lookups_find_rows() {
        let r = sample();
        assert_eq!(r.counter("tagger.lines"), Some(64));
        assert_eq!(r.counter("nope"), None);
        assert_eq!(r.stage("tag").unwrap().items, 64);
        assert_eq!(r.gauge("pipeline.in_flight_batches").unwrap().peak, 3);
    }

    #[test]
    fn worker_utilization_and_histogram_stats() {
        let r = sample();
        assert!((r.workers[0].utilization() - 0.5).abs() < 1e-12);
        let h = &r.histograms[0];
        assert!((h.mean() - 350.0).abs() < 1e-12);
        assert_eq!(h.quantile_le(0.5), Some(255));
        assert_eq!(h.quantile_le(1.0), Some(511));
        let empty = HistogramObs {
            name: "e".into(),
            count: 0,
            sum: 0,
            buckets: vec![],
        };
        assert_eq!(empty.quantile_le(0.5), None);
        assert_eq!(empty.mean(), 0.0);
    }

    #[test]
    fn optional_bound_is_omitted() {
        let g = GaugeObs {
            name: "g".into(),
            current: 1,
            peak: 2,
            bound: None,
        };
        assert!(!g.to_json().contains("bound"));
    }
}
