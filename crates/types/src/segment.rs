//! On-disk segment-store schema: format version, magics, and the
//! stable byte codes the binary codecs use.
//!
//! The persistent store (`sclog-store`) writes a compact in-tree
//! binary format — there is deliberately no JSON reader in this
//! workspace, so everything durable round-trips through the codes
//! defined here. The schema version below is the **single definition
//! site** for the whole workspace (`tidy.sh` check 6 pins it): any
//! incompatible change to the segment, WAL, manifest, or catalog
//! layout must bump it, and readers refuse files from another
//! version rather than guessing.
//!
//! File layouts (all integers little-endian; `varint` is LEB128,
//! `zigzag` maps signed to unsigned for delta coding):
//!
//! * **Segment** (`seg-<id>.seg`): `SEGMENT_MAGIC`, version `u16`,
//!   zone-map length `u32`, zone-map bytes, zone CRC32 `u32`, record
//!   payload, payload CRC32 `u32`. The zone map is self-contained, so
//!   pruning reads the fixed header plus the zone block and never
//!   touches the payload.
//! * **WAL** (`wal.bin`): `WAL_MAGIC`, version `u16`, then frames of
//!   `len u32`, `crc u32`, payload. Recovery truncates at the first
//!   frame whose length or CRC does not check out.
//! * **Manifest** (`MANIFEST.bin`): `MANIFEST_MAGIC`, version `u16`,
//!   next segment id `u32`, sealed-through sequence `u64`, live
//!   segment-id list, CRC32. Rewritten atomically (tmp + rename).
//! * **Catalog** (`catalog.bin`): `CATALOG_MAGIC`, version `u16`,
//!   interned host names and category definitions in id order, CRC32.

use crate::alert::AlertType;
use crate::severity::{Severity, ALL_BGL_SEVERITIES, ALL_SYSLOG_SEVERITIES};
use crate::system::{SystemId, ALL_SYSTEMS};

/// The one schema version every durable file in the store carries.
///
/// Single definition site, enforced by `scripts/tidy.sh` check 6.
pub const SEGMENT_FORMAT_VERSION: u16 = 1;

/// Leading magic of a sealed segment file.
pub const SEGMENT_MAGIC: [u8; 8] = *b"SCLGSEG\0";
/// Leading magic of a partition's write-ahead log.
pub const WAL_MAGIC: [u8; 8] = *b"SCLGWAL\0";
/// Leading magic of a partition manifest.
pub const MANIFEST_MAGIC: [u8; 8] = *b"SCLGMAN\0";
/// Leading magic of the store catalog.
pub const CATALOG_MAGIC: [u8; 8] = *b"SCLGCAT\0";

/// Number of distinct severity byte codes (`0` = none, `1..=8`
/// syslog, `9..=14` BG/L RAS); fits a `u16` bitset in zone maps.
pub const SEVERITY_CODES: u8 = 15;

/// Stable byte code for a system (its `ALL_SYSTEMS` position).
pub fn system_code(system: SystemId) -> u8 {
    ALL_SYSTEMS
        .iter()
        .position(|&s| s == system)
        .expect("every system appears in ALL_SYSTEMS") as u8
}

/// Inverse of [`system_code`].
pub fn system_from_code(code: u8) -> Option<SystemId> {
    ALL_SYSTEMS.get(code as usize).copied()
}

/// Filesystem-safe directory slug for a system's partition tree.
///
/// Every slug parses back through `SystemId::from_str`, so a human
/// can read a store directory and a reader can re-derive the system.
pub fn system_slug(system: SystemId) -> &'static str {
    match system {
        SystemId::BlueGeneL => "bgl",
        SystemId::Thunderbird => "thunderbird",
        SystemId::RedStorm => "redstorm",
        SystemId::Spirit => "spirit",
        SystemId::Liberty => "liberty",
    }
}

/// Stable byte code for a severity: `0` for [`Severity::None`],
/// `1..=8` for the syslog scale, `9..=14` for the BG/L scale.
pub fn severity_code(severity: Severity) -> u8 {
    match severity {
        Severity::None => 0,
        Severity::Syslog(s) => 1 + s.priority(),
        Severity::Bgl(b) => {
            9 + ALL_BGL_SEVERITIES
                .iter()
                .position(|&x| x == b)
                .expect("every BG/L severity appears in ALL_BGL_SEVERITIES") as u8
        }
    }
}

/// Inverse of [`severity_code`]; `None` for an out-of-range byte.
pub fn severity_from_code(code: u8) -> Option<Severity> {
    match code {
        0 => Some(Severity::None),
        1..=8 => Some(Severity::Syslog(ALL_SYSLOG_SEVERITIES[code as usize - 1])),
        9..=14 => Some(Severity::Bgl(ALL_BGL_SEVERITIES[code as usize - 9])),
        _ => None,
    }
}

/// Stable byte code for an alert class (`0` hardware, `1` software,
/// `2` indeterminate); fits a `u8` bitset in zone maps.
pub fn class_code(class: AlertType) -> u8 {
    match class {
        AlertType::Hardware => 0,
        AlertType::Software => 1,
        AlertType::Indeterminate => 2,
    }
}

/// Inverse of [`class_code`].
pub fn class_from_code(code: u8) -> Option<AlertType> {
    match code {
        0 => Some(AlertType::Hardware),
        1 => Some(AlertType::Software),
        2 => Some(AlertType::Indeterminate),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alert::ALL_ALERT_TYPES;

    #[test]
    fn system_codes_round_trip() {
        for system in ALL_SYSTEMS {
            assert_eq!(system_from_code(system_code(system)), Some(system));
            assert_eq!(
                system_slug(system).parse::<SystemId>(),
                Ok(system),
                "slug must parse back"
            );
        }
        assert_eq!(system_from_code(5), None);
    }

    #[test]
    fn severity_codes_are_dense_and_round_trip() {
        let mut seen = std::collections::HashSet::new();
        let mut all = vec![Severity::None];
        all.extend(ALL_SYSLOG_SEVERITIES.map(Severity::Syslog));
        all.extend(ALL_BGL_SEVERITIES.map(Severity::Bgl));
        for sev in all {
            let code = severity_code(sev);
            assert!(code < SEVERITY_CODES, "{sev:?} -> {code}");
            assert!(seen.insert(code), "duplicate code {code}");
            assert_eq!(severity_from_code(code), Some(sev));
        }
        assert_eq!(seen.len(), SEVERITY_CODES as usize);
        assert_eq!(severity_from_code(SEVERITY_CODES), None);
    }

    #[test]
    fn class_codes_round_trip() {
        for class in ALL_ALERT_TYPES {
            assert_eq!(class_from_code(class_code(class)), Some(class));
        }
        assert_eq!(class_from_code(3), None);
    }
}
