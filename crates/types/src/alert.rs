//! Alerts, alert types, and ground-truth failure identifiers.

use crate::category::CategoryId;
use crate::source::NodeId;
use crate::time::Timestamp;
use std::fmt;

/// Administrator-assigned subsystem of origin for an alert category.
///
/// Table 3/Table 4 of the paper classify every category as Hardware,
/// Software, or Indeterminate ("can originate from both hardware and
/// software, or have unknown cause").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AlertType {
    /// Hardware subsystem (e.g. disk, memory, NIC parity).
    Hardware,
    /// Software subsystem (e.g. PBS, kernel bugs, Lustre mounts).
    Software,
    /// Unknown or mixed origin.
    Indeterminate,
}

/// All alert types in Table 3 order.
pub const ALL_ALERT_TYPES: [AlertType; 3] = [
    AlertType::Hardware,
    AlertType::Software,
    AlertType::Indeterminate,
];

impl AlertType {
    /// The single-letter code used in Table 4 (`H`, `S`, `I`).
    pub const fn code(self) -> char {
        match self {
            AlertType::Hardware => 'H',
            AlertType::Software => 'S',
            AlertType::Indeterminate => 'I',
        }
    }

    /// Full name as used in Table 3.
    pub const fn name(self) -> &'static str {
        match self {
            AlertType::Hardware => "Hardware",
            AlertType::Software => "Software",
            AlertType::Indeterminate => "Indeterminate",
        }
    }
}

impl fmt::Display for AlertType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Ground-truth identifier of the underlying failure that caused an
/// alert.
///
/// The paper had no ground truth — administrators estimated failure
/// counts from filtered alerts. Our simulator knows which failure
/// produced each alert, so filters can be scored exactly. Real ingested
/// logs have `None` for every alert.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FailureId(pub u64);

impl fmt::Display for FailureId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "failure#{}", self.0)
    }
}

/// A message tagged as an alert by an expert rule.
///
/// Alerts are the unit the filtering algorithms of Section 3.3 operate
/// on: each carries its time, source, and category; `message_index`
/// points back into the originating message sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Alert {
    /// Time of the underlying message.
    pub time: Timestamp,
    /// Source of the underlying message.
    pub source: NodeId,
    /// The expert rule that tagged it.
    pub category: CategoryId,
    /// Index of the underlying message in the parsed message sequence.
    pub message_index: usize,
    /// Ground-truth failure id (simulator-generated logs only).
    pub failure: Option<FailureId>,
}

impl Alert {
    /// Convenience constructor for an alert with no ground truth.
    pub fn new(
        time: Timestamp,
        source: NodeId,
        category: CategoryId,
        message_index: usize,
    ) -> Self {
        Alert {
            time,
            source,
            category,
            message_index,
            failure: None,
        }
    }

    /// Returns a copy with the ground-truth failure attached.
    pub fn with_failure(mut self, failure: FailureId) -> Self {
        self.failure = Some(failure);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_codes_match_table4() {
        assert_eq!(AlertType::Hardware.code(), 'H');
        assert_eq!(AlertType::Software.code(), 'S');
        assert_eq!(AlertType::Indeterminate.code(), 'I');
    }

    #[test]
    fn type_display_matches_table3() {
        assert_eq!(AlertType::Hardware.to_string(), "Hardware");
        assert_eq!(AlertType::Indeterminate.to_string(), "Indeterminate");
    }

    #[test]
    fn alert_builders() {
        let a = Alert::new(
            Timestamp::from_secs(5),
            NodeId::from_index(1),
            CategoryId::from_index(2),
            99,
        );
        assert_eq!(a.failure, None);
        let b = a.with_failure(FailureId(7));
        assert_eq!(b.failure, Some(FailureId(7)));
        assert_eq!(b.message_index, 99);
        assert_eq!(FailureId(7).to_string(), "failure#7");
    }
}
