//! Message sources (nodes, controllers, service cards) and interning.
//!
//! A study-scale log names the same few thousand sources hundreds of
//! millions of times, so sources are interned to a compact [`NodeId`].
//! Figure 2(b) of the paper sorts Liberty's sources by message count; the
//! interner keeps that analysis cheap.

use std::collections::HashMap;
use std::fmt;

/// Compact identifier for an interned message source.
///
/// Obtained from [`SourceInterner::intern`]; resolve back to the name
/// with [`SourceInterner::name`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u32);

impl NodeId {
    /// The raw index value.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Constructs a `NodeId` from a raw index.
    ///
    /// Only meaningful when the index came from the same
    /// [`SourceInterner`] that will later resolve it.
    pub const fn from_index(index: u32) -> Self {
        NodeId(index)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node#{}", self.0)
    }
}

/// Bijective mapping between source names and [`NodeId`]s.
///
/// # Examples
///
/// ```
/// use sclog_types::SourceInterner;
///
/// let mut interner = SourceInterner::new();
/// let a = interner.intern("sn373");
/// let b = interner.intern("sn325");
/// assert_ne!(a, b);
/// assert_eq!(interner.intern("sn373"), a);
/// assert_eq!(interner.name(a), "sn373");
/// assert_eq!(interner.len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SourceInterner {
    names: Vec<Box<str>>,
    index: HashMap<Box<str>, NodeId>,
}

impl SourceInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its stable [`NodeId`].
    pub fn intern(&mut self, name: &str) -> NodeId {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id =
            NodeId(u32::try_from(self.names.len()).expect("more than u32::MAX distinct sources"));
        self.names.push(name.into());
        self.index.insert(name.into(), id);
        id
    }

    /// Looks up a name without interning it.
    pub fn get(&self, name: &str) -> Option<NodeId> {
        self.index.get(name).copied()
    }

    /// The name for an interned id.
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this interner.
    pub fn name(&self, id: NodeId) -> &str {
        &self.names[id.index()]
    }

    /// Number of distinct interned sources.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(NodeId, name)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &str)> + '_ {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i as u32), n.as_ref()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = SourceInterner::new();
        let a = i.intern("tbird-admin1");
        assert_eq!(i.intern("tbird-admin1"), a);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn distinct_names_get_distinct_ids() {
        let mut i = SourceInterner::new();
        let ids: Vec<_> = (0..100).map(|n| i.intern(&format!("sn{n}"))).collect();
        let mut sorted = ids.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 100);
        for (n, id) in ids.iter().enumerate() {
            assert_eq!(i.name(*id), format!("sn{n}"));
        }
    }

    #[test]
    fn get_does_not_intern() {
        let mut i = SourceInterner::new();
        assert!(i.get("ladmin2").is_none());
        assert!(i.is_empty());
        let id = i.intern("ladmin2");
        assert_eq!(i.get("ladmin2"), Some(id));
    }

    #[test]
    fn iter_in_order() {
        let mut i = SourceInterner::new();
        i.intern("a");
        i.intern("b");
        let collected: Vec<_> = i.iter().map(|(id, n)| (id.index(), n.to_owned())).collect();
        assert_eq!(collected, vec![(0, "a".to_owned()), (1, "b".to_owned())]);
    }

    #[test]
    fn node_id_display() {
        assert_eq!(NodeId::from_index(7).to_string(), "node#7");
        assert_eq!(NodeId::from_index(7).index(), 7);
    }
}
