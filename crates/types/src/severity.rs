//! Message severity vocabularies.
//!
//! The paper deals with two distinct severity scales:
//!
//! * the BSD **syslog** scale (`EMERG` … `DEBUG`), recorded only on
//!   Red Storm among the Sandia machines (Table 6), and
//! * the **BG/L RAS** scale (`FATAL`, `FAILURE`, `SEVERE`, `ERROR`,
//!   `WARNING`, `INFO`; Table 5).
//!
//! A central finding of Section 3.2 is that neither scale is a reliable
//! alert indicator; [`Severity`] keeps both representable so analyses can
//! quantify exactly that (Tables 5 and 6).

use std::fmt;
use std::str::FromStr;

/// The BSD syslog severity scale, most to least severe.
///
/// # Examples
///
/// ```
/// use sclog_types::SyslogSeverity;
///
/// assert!(SyslogSeverity::Crit.is_at_least(SyslogSeverity::Error));
/// assert_eq!(SyslogSeverity::Warning.to_string(), "WARNING");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SyslogSeverity {
    /// System is unusable.
    Emerg,
    /// Action must be taken immediately.
    Alert,
    /// Critical conditions.
    Crit,
    /// Error conditions.
    Error,
    /// Warning conditions.
    Warning,
    /// Normal but significant.
    Notice,
    /// Informational.
    Info,
    /// Debug-level messages.
    Debug,
}

/// All syslog severities in the order of the paper's Table 6.
pub const ALL_SYSLOG_SEVERITIES: [SyslogSeverity; 8] = [
    SyslogSeverity::Emerg,
    SyslogSeverity::Alert,
    SyslogSeverity::Crit,
    SyslogSeverity::Error,
    SyslogSeverity::Warning,
    SyslogSeverity::Notice,
    SyslogSeverity::Info,
    SyslogSeverity::Debug,
];

impl SyslogSeverity {
    /// Numeric syslog priority (0 = EMERG … 7 = DEBUG).
    pub const fn priority(self) -> u8 {
        self as u8
    }

    /// True if `self` is at least as severe as `other`.
    ///
    /// Note severities *decrease* with priority number, so this compares
    /// priorities inverted.
    pub fn is_at_least(self, other: SyslogSeverity) -> bool {
        self.priority() <= other.priority()
    }

    /// The canonical upper-case name (`"EMERG"`, …).
    pub const fn name(self) -> &'static str {
        match self {
            SyslogSeverity::Emerg => "EMERG",
            SyslogSeverity::Alert => "ALERT",
            SyslogSeverity::Crit => "CRIT",
            SyslogSeverity::Error => "ERR",
            SyslogSeverity::Warning => "WARNING",
            SyslogSeverity::Notice => "NOTICE",
            SyslogSeverity::Info => "INFO",
            SyslogSeverity::Debug => "DEBUG",
        }
    }
}

impl fmt::Display for SyslogSeverity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error from parsing a severity name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSeverityError(String);

impl fmt::Display for ParseSeverityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown severity name: {:?}", self.0)
    }
}

impl std::error::Error for ParseSeverityError {}

impl FromStr for SyslogSeverity {
    type Err = ParseSeverityError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_uppercase().as_str() {
            "EMERG" | "EMERGENCY" | "PANIC" => Ok(SyslogSeverity::Emerg),
            "ALERT" => Ok(SyslogSeverity::Alert),
            "CRIT" | "CRITICAL" => Ok(SyslogSeverity::Crit),
            "ERR" | "ERROR" => Ok(SyslogSeverity::Error),
            "WARNING" | "WARN" => Ok(SyslogSeverity::Warning),
            "NOTICE" => Ok(SyslogSeverity::Notice),
            "INFO" => Ok(SyslogSeverity::Info),
            "DEBUG" => Ok(SyslogSeverity::Debug),
            _ => Err(ParseSeverityError(s.to_owned())),
        }
    }
}

/// The BG/L RAS severity scale, most to least severe (Table 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BglSeverity {
    /// Fatal condition; the hardware or job cannot continue.
    Fatal,
    /// A component failure was recorded.
    Failure,
    /// Severe error.
    Severe,
    /// Ordinary error.
    Error,
    /// Warning.
    Warning,
    /// Informational.
    Info,
}

/// All BG/L severities in the order of the paper's Table 5.
pub const ALL_BGL_SEVERITIES: [BglSeverity; 6] = [
    BglSeverity::Fatal,
    BglSeverity::Failure,
    BglSeverity::Severe,
    BglSeverity::Error,
    BglSeverity::Warning,
    BglSeverity::Info,
];

impl BglSeverity {
    /// The canonical upper-case name (`"FATAL"`, …).
    pub const fn name(self) -> &'static str {
        match self {
            BglSeverity::Fatal => "FATAL",
            BglSeverity::Failure => "FAILURE",
            BglSeverity::Severe => "SEVERE",
            BglSeverity::Error => "ERROR",
            BglSeverity::Warning => "WARNING",
            BglSeverity::Info => "INFO",
        }
    }

    /// True for the severities that prior work (refs. 9, 10, 20 in the
    /// paper) treated as alert-indicating: `FATAL` and `FAILURE`.
    pub const fn is_failure_level(self) -> bool {
        matches!(self, BglSeverity::Fatal | BglSeverity::Failure)
    }
}

impl fmt::Display for BglSeverity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for BglSeverity {
    type Err = ParseSeverityError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_uppercase().as_str() {
            "FATAL" => Ok(BglSeverity::Fatal),
            "FAILURE" => Ok(BglSeverity::Failure),
            "SEVERE" => Ok(BglSeverity::Severe),
            "ERROR" => Ok(BglSeverity::Error),
            "WARNING" | "WARN" => Ok(BglSeverity::Warning),
            "INFO" => Ok(BglSeverity::Info),
            _ => Err(ParseSeverityError(s.to_owned())),
        }
    }
}

/// Severity attached to a message, if the system records one.
///
/// Thunderbird, Spirit and Liberty logs carry no severity
/// ([`Severity::None`]); Red Storm's syslog path uses the syslog scale;
/// BG/L uses the RAS scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Severity {
    /// The logging path does not record severity.
    #[default]
    None,
    /// A BSD syslog severity.
    Syslog(SyslogSeverity),
    /// A BG/L RAS severity.
    Bgl(BglSeverity),
}

impl Severity {
    /// The syslog severity, if this is a syslog-scale value.
    pub fn as_syslog(self) -> Option<SyslogSeverity> {
        match self {
            Severity::Syslog(s) => Some(s),
            _ => None,
        }
    }

    /// The BG/L severity, if this is a RAS-scale value.
    pub fn as_bgl(self) -> Option<BglSeverity> {
        match self {
            Severity::Bgl(s) => Some(s),
            _ => None,
        }
    }

    /// True if no severity is recorded.
    pub fn is_none(self) -> bool {
        self == Severity::None
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::None => f.write_str("-"),
            Severity::Syslog(s) => s.fmt(f),
            Severity::Bgl(s) => s.fmt(f),
        }
    }
}

impl From<SyslogSeverity> for Severity {
    fn from(s: SyslogSeverity) -> Self {
        Severity::Syslog(s)
    }
}

impl From<BglSeverity> for Severity {
    fn from(s: BglSeverity) -> Self {
        Severity::Bgl(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn syslog_ordering() {
        assert!(SyslogSeverity::Emerg < SyslogSeverity::Debug);
        assert!(SyslogSeverity::Crit.is_at_least(SyslogSeverity::Error));
        assert!(!SyslogSeverity::Info.is_at_least(SyslogSeverity::Warning));
        assert!(SyslogSeverity::Alert.is_at_least(SyslogSeverity::Alert));
    }

    #[test]
    fn syslog_priorities_match_rfc() {
        assert_eq!(SyslogSeverity::Emerg.priority(), 0);
        assert_eq!(SyslogSeverity::Debug.priority(), 7);
    }

    #[test]
    fn syslog_parse_round_trip() {
        for sev in ALL_SYSLOG_SEVERITIES {
            assert_eq!(sev.name().parse::<SyslogSeverity>(), Ok(sev));
        }
        assert_eq!(
            "warn".parse::<SyslogSeverity>(),
            Ok(SyslogSeverity::Warning)
        );
        assert!("BOGUS".parse::<SyslogSeverity>().is_err());
    }

    #[test]
    fn bgl_parse_round_trip() {
        for sev in ALL_BGL_SEVERITIES {
            assert_eq!(sev.name().parse::<BglSeverity>(), Ok(sev));
        }
        assert!("CRIT".parse::<BglSeverity>().is_err());
    }

    #[test]
    fn bgl_failure_levels() {
        assert!(BglSeverity::Fatal.is_failure_level());
        assert!(BglSeverity::Failure.is_failure_level());
        assert!(!BglSeverity::Severe.is_failure_level());
        assert!(!BglSeverity::Info.is_failure_level());
    }

    #[test]
    fn severity_wrappers() {
        let s: Severity = SyslogSeverity::Crit.into();
        assert_eq!(s.as_syslog(), Some(SyslogSeverity::Crit));
        assert_eq!(s.as_bgl(), None);
        assert!(!s.is_none());
        assert!(Severity::None.is_none());
        assert_eq!(Severity::None.to_string(), "-");
        assert_eq!(Severity::Bgl(BglSeverity::Fatal).to_string(), "FATAL");
    }
}
