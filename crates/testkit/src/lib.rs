//! A small seeded property-testing harness.
//!
//! Replaces `proptest` for this workspace's needs: run a property
//! closure against many deterministically generated random inputs,
//! report the failing case's seed, and let that seed be replayed.
//!
//! * `SCLOG_PROP_CASES` — iterations per property (default 64).
//! * `SCLOG_PROP_SEED` — base seed; set it to the value printed by a
//!   failure report to replay exactly that input stream.
//!
//! Properties are ordinary closures using ordinary `assert!`s; a panic
//! in any case is caught, stamped with the case's seed and a replay
//! recipe, and re-raised.
//!
//! # Examples
//!
//! ```
//! use sclog_testkit::{check, Gen};
//!
//! check("reverse twice is identity", |g: &mut Gen| {
//!     let xs: Vec<u64> = g.vec(0..=16, |g| g.below(100));
//!     let mut ys = xs.clone();
//!     ys.reverse();
//!     ys.reverse();
//!     assert_eq!(xs, ys);
//! });
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use sclog_desim::{derive_seed, RngStream};
use std::ops::RangeInclusive;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Default iterations per property when `SCLOG_PROP_CASES` is unset.
pub const DEFAULT_CASES: u64 = 64;

/// A source of random test data for one property case.
///
/// Thin wrapper over the simulator's [`RngStream`] with the generator
/// combinators the test suites use.
#[derive(Debug)]
pub struct Gen {
    rng: RngStream,
}

impl Gen {
    /// A generator seeded directly (normally the harness makes these).
    pub fn from_seed(seed: u64) -> Self {
        Gen {
            rng: RngStream::from_seed(seed),
        }
    }

    /// Uniform `u64` in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        self.rng.below(n)
    }

    /// Uniform `i64` in the inclusive range.
    pub fn int_in(&mut self, range: RangeInclusive<i64>) -> i64 {
        self.rng.int_in(*range.start(), *range.end())
    }

    /// Uniform `usize` in the inclusive range.
    pub fn usize_in(&mut self, range: RangeInclusive<usize>) -> usize {
        self.rng.int_in(*range.start() as i64, *range.end() as i64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        self.rng.uniform()
    }

    /// Bernoulli trial.
    pub fn chance(&mut self, p: f64) -> bool {
        self.rng.chance(p)
    }

    /// Picks one element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn pick<'a, T>(&mut self, options: &'a [T]) -> &'a T {
        assert!(!options.is_empty(), "pick from empty slice");
        &options[self.below(options.len() as u64) as usize]
    }

    /// A vector whose length is drawn from `len`, elements from `f`.
    pub fn vec<T>(
        &mut self,
        len: RangeInclusive<usize>,
        mut f: impl FnMut(&mut Gen) -> T,
    ) -> Vec<T> {
        let n = self.usize_in(len);
        (0..n).map(|_| f(self)).collect()
    }

    /// A string of printable ASCII (space through `~`), length drawn
    /// from `len` — the alphabet the old proptest suites used for log
    /// bodies.
    pub fn ascii_printable(&mut self, len: RangeInclusive<usize>) -> String {
        let n = self.usize_in(len);
        (0..n)
            .map(|_| (b' ' + self.below(95) as u8) as char)
            .collect()
    }

    /// Like [`Gen::ascii_printable`] but also emitting tabs, matching
    /// proptest's `[ -~\t]` line strategy.
    pub fn ascii_line(&mut self, len: RangeInclusive<usize>) -> String {
        let n = self.usize_in(len);
        (0..n)
            .map(|_| match self.below(96) {
                95 => '\t',
                k => (b' ' + k as u8) as char,
            })
            .collect()
    }

    /// Direct access to the underlying stream for distribution samplers.
    pub fn rng(&mut self) -> &mut RngStream {
        &mut self.rng
    }
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

/// Number of cases to run, honouring `SCLOG_PROP_CASES`.
pub fn cases() -> u64 {
    env_u64("SCLOG_PROP_CASES").unwrap_or(DEFAULT_CASES).max(1)
}

/// Base seed, honouring `SCLOG_PROP_SEED`.
pub fn base_seed() -> u64 {
    env_u64("SCLOG_PROP_SEED").unwrap_or(0x5c10_6000)
}

/// Runs `prop` against [`cases`] generated inputs.
///
/// # Panics
///
/// Re-raises the property's panic, prefixed by a report naming the
/// failing case seed and the environment settings that replay it.
pub fn check(name: &str, prop: impl Fn(&mut Gen)) {
    check_n(name, cases(), prop);
}

/// Like [`check`] but capped at `max_cases` iterations — for expensive
/// properties that should run fewer cases than the suite default.
/// `SCLOG_PROP_CASES` still lowers (never raises) the count.
///
/// # Panics
///
/// Same failure report as [`check`].
pub fn check_n(name: &str, max_cases: u64, prop: impl Fn(&mut Gen)) {
    let base = base_seed();
    let total = cases().min(max_cases).max(1);
    for case in 0..total {
        // Per-case seed mixes the property name so distinct properties
        // explore distinct streams even under one base seed.
        let seed = derive_seed(base, &format!("{name}#{case}"));
        let result = catch_unwind(AssertUnwindSafe(|| {
            let mut g = Gen::from_seed(seed);
            prop(&mut g);
        }));
        if let Err(payload) = result {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic>");
            panic!(
                "property {name:?} failed on case {case}/{total} (seed {seed:#018x}):\n\
                 {msg}\n\
                 replay with: SCLOG_PROP_SEED={base} SCLOG_PROP_CASES={n} cargo test ...",
                n = case + 1,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Gen::from_seed(7);
        let mut b = Gen::from_seed(7);
        for _ in 0..50 {
            assert_eq!(a.below(1000), b.below(1000));
        }
    }

    #[test]
    fn check_passes_trivial_property() {
        check("sum is commutative", |g| {
            let x = g.below(1000);
            let y = g.below(1000);
            assert_eq!(x + y, y + x);
        });
    }

    #[test]
    fn check_reports_seed_on_failure() {
        let result = std::panic::catch_unwind(|| {
            check("always fails", |g| {
                let v = g.below(10);
                assert!(v > 100, "generated {v}");
            });
        });
        let err = result.expect_err("property should fail");
        let msg = err.downcast_ref::<String>().expect("string panic");
        assert!(msg.contains("always fails"), "{msg}");
        assert!(msg.contains("seed 0x"), "{msg}");
        assert!(msg.contains("SCLOG_PROP_SEED="), "{msg}");
    }

    #[test]
    fn generators_respect_ranges() {
        check("ranges", |g| {
            assert!(g.usize_in(3..=9) >= 3);
            assert!(g.int_in(-5..=5).abs() <= 5);
            let s = g.ascii_printable(0..=40);
            assert!(s.len() <= 40);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
            let line = g.ascii_line(1..=10);
            assert!(line.chars().all(|c| c == '\t' || (' '..='~').contains(&c)));
            let v = g.vec(2..=4, |g| g.f64());
            assert!((2..=4).contains(&v.len()));
            assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
            let choice = *g.pick(&[1, 2, 3]);
            assert!((1..=3).contains(&choice));
        });
    }
}
