//! Prediction evaluation: precision, recall, lead time.

use sclog_types::{Duration, Timestamp};
use std::fmt;

/// Scorecard for a predictor against known failure times.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictionScore {
    /// Warnings followed by a failure within the horizon.
    pub true_positives: usize,
    /// Warnings with no failure in the horizon (crying wolf).
    pub false_positives: usize,
    /// Failures with no warning in the preceding horizon.
    pub false_negatives: usize,
    /// Mean lead time of detected failures (warning → failure).
    pub mean_lead: Duration,
}

impl PredictionScore {
    /// Precision: TP / (TP + FP); 1.0 with no warnings.
    pub fn precision(&self) -> f64 {
        let d = self.true_positives + self.false_positives;
        if d == 0 {
            1.0
        } else {
            self.true_positives as f64 / d as f64
        }
    }

    /// Recall: detected failures / all failures; 1.0 with no failures.
    pub fn recall(&self) -> f64 {
        let d = self.true_positives + self.false_negatives;
        if d == 0 {
            1.0
        } else {
            self.true_positives as f64 / d as f64
        }
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

impl fmt::Display for PredictionScore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "P={:.3} R={:.3} F1={:.3} lead={:.0}s (tp={} fp={} fn={})",
            self.precision(),
            self.recall(),
            self.f1(),
            self.mean_lead.as_secs_f64(),
            self.true_positives,
            self.false_positives,
            self.false_negatives
        )
    }
}

/// Evaluates warnings against failure times.
///
/// A failure is *detected* if some warning precedes it within
/// `horizon` (warning time in `[failure − horizon, failure)`). Each
/// warning can detect at most one failure (the earliest undetected one
/// in range); remaining warnings are false positives.
///
/// Both inputs must be time-sorted.
///
/// # Panics
///
/// Panics if `horizon` is not positive.
pub fn evaluate(
    warnings: &[Timestamp],
    failures: &[Timestamp],
    horizon: Duration,
) -> PredictionScore {
    assert!(horizon.as_micros() > 0, "horizon must be positive");
    debug_assert!(warnings.windows(2).all(|w| w[0] <= w[1]));
    debug_assert!(failures.windows(2).all(|w| w[0] <= w[1]));

    let mut detected = vec![false; failures.len()];
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut lead_sum = Duration::ZERO;
    let mut fi = 0usize;
    for &w in warnings {
        // Advance past failures at or before the warning.
        while fi < failures.len() && failures[fi] <= w {
            fi += 1;
        }
        // Find the earliest undetected failure within the horizon.
        let mut j = fi;
        let mut matched = false;
        while j < failures.len() && failures[j] - w <= horizon {
            if !detected[j] {
                detected[j] = true;
                tp += 1;
                lead_sum = lead_sum + (failures[j] - w);
                matched = true;
                break;
            }
            j += 1;
        }
        if !matched {
            fp += 1;
        }
    }
    let false_negatives = detected.iter().filter(|&&d| !d).count();
    PredictionScore {
        true_positives: tp,
        false_positives: fp,
        false_negatives,
        mean_lead: if tp == 0 {
            Duration::ZERO
        } else {
            lead_sum / tp as i64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: i64) -> Timestamp {
        Timestamp::from_secs(secs)
    }

    #[test]
    fn perfect_prediction() {
        let warnings = [t(90), t(490)];
        let failures = [t(100), t(500)];
        let s = evaluate(&warnings, &failures, Duration::from_secs(60));
        assert_eq!(s.true_positives, 2);
        assert_eq!(s.false_positives, 0);
        assert_eq!(s.false_negatives, 0);
        assert_eq!(s.precision(), 1.0);
        assert_eq!(s.recall(), 1.0);
        assert_eq!(s.f1(), 1.0);
        assert_eq!(s.mean_lead, Duration::from_secs(10));
    }

    #[test]
    fn warning_after_failure_does_not_count() {
        let s = evaluate(&[t(101)], &[t(100)], Duration::from_secs(60));
        assert_eq!(s.true_positives, 0);
        assert_eq!(s.false_positives, 1);
        assert_eq!(s.false_negatives, 1);
    }

    #[test]
    fn warning_too_early_is_false_positive() {
        let s = evaluate(&[t(0)], &[t(1000)], Duration::from_secs(60));
        assert_eq!(s.true_positives, 0);
        assert_eq!(s.false_positives, 1);
        assert_eq!(s.false_negatives, 1);
        assert_eq!(s.f1(), 0.0);
    }

    #[test]
    fn one_warning_detects_one_failure() {
        // Two failures close together, one warning: only one detected.
        let s = evaluate(&[t(90)], &[t(100), t(110)], Duration::from_secs(60));
        assert_eq!(s.true_positives, 1);
        assert_eq!(s.false_negatives, 1);
        // Two warnings, two failures in range: both detected.
        let s = evaluate(&[t(80), t(90)], &[t(100), t(110)], Duration::from_secs(60));
        assert_eq!(s.true_positives, 2);
        assert_eq!(s.false_negatives, 0);
    }

    #[test]
    fn empty_edges() {
        let s = evaluate(&[], &[], Duration::from_secs(60));
        assert_eq!(s.precision(), 1.0);
        assert_eq!(s.recall(), 1.0);
        let s = evaluate(&[], &[t(10)], Duration::from_secs(60));
        assert_eq!(s.recall(), 0.0);
        assert_eq!(s.precision(), 1.0);
        assert_eq!(s.mean_lead, Duration::ZERO);
    }

    #[test]
    fn display_is_informative() {
        let s = evaluate(&[t(90)], &[t(100)], Duration::from_secs(60));
        let text = s.to_string();
        assert!(text.contains("P=1.000"));
        assert!(text.contains("lead=10s"));
    }

    #[test]
    #[should_panic(expected = "horizon")]
    fn zero_horizon_panics() {
        let _ = evaluate(&[], &[], Duration::ZERO);
    }
}
