//! Failure prediction: the paper's recommended ensemble direction.
//!
//! Section 4: "whereas the failures in this study have widely varying
//! signatures, previous prediction approaches focused on single
//! features for detecting all failure types … Future research should
//! consider ensembles of predictors based on multiple features, with
//! failure categories being predicted according to their respective
//! behavior."
//!
//! This crate implements three predictor families and the machinery to
//! combine and evaluate them:
//!
//! * [`RateThresholdPredictor`] — warns when the trailing-window alert
//!   rate exceeds a threshold (the classic "failures tend to be
//!   preceded by an increased rate of non-fatal errors" signal of the
//!   paper's reference \[13\]).
//! * [`PrecursorPredictor`] — warns when a *precursor category* fires
//!   (cascades like GM_PAR → GM_LANAI, Figure 3), with precursor pairs
//!   minable from data via [`mine_precursors`].
//! * [`Ensemble`] — a per-target combination of predictors, the paper's
//!   recommendation.
//! * [`evaluate`] — precision/recall/F1 and lead time against failure
//!   times.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod eval;
mod predictors;

pub use eval::{evaluate, PredictionScore};
pub use predictors::{
    failure_onsets, mine_precursors, Ensemble, PrecursorPredictor, PrecursorRule, Predictor,
    RateThresholdPredictor,
};
