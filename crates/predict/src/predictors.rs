//! The predictor families and precursor mining.

use sclog_types::{Alert, CategoryId, Duration, Timestamp};
use std::collections::{HashMap, HashSet, VecDeque};

/// A failure predictor: consumes the alert stream, produces warning
/// times.
///
/// Warnings are deduplicated by a refractory period internally so that
/// one episode yields one warning, not one per alert.
pub trait Predictor {
    /// Display name for reports.
    fn name(&self) -> String;

    /// Produces warning times from a time-sorted alert stream.
    fn warnings(&self, alerts: &[Alert]) -> Vec<Timestamp>;
}

/// Warns when the count of alerts (optionally restricted to one
/// category) within a trailing window reaches a threshold.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RateThresholdPredictor {
    /// Restrict to this category; `None` = all alerts.
    pub category: Option<CategoryId>,
    /// Trailing window length.
    pub window: Duration,
    /// Alert count that triggers a warning.
    pub threshold: usize,
    /// Minimum spacing between consecutive warnings.
    pub refractory: Duration,
}

impl RateThresholdPredictor {
    /// Convenience constructor with a 10-minute refractory period.
    ///
    /// # Panics
    ///
    /// Panics if `threshold == 0` or `window` is not positive.
    pub fn new(category: Option<CategoryId>, window: Duration, threshold: usize) -> Self {
        assert!(threshold > 0, "threshold must be positive");
        assert!(window.as_micros() > 0, "window must be positive");
        RateThresholdPredictor {
            category,
            window,
            threshold,
            refractory: Duration::from_mins(10),
        }
    }
}

impl Predictor for RateThresholdPredictor {
    fn name(&self) -> String {
        match self.category {
            Some(c) => format!("rate[{c}]≥{}/{}", self.threshold, self.window),
            None => format!("rate[*]≥{}/{}", self.threshold, self.window),
        }
    }

    fn warnings(&self, alerts: &[Alert]) -> Vec<Timestamp> {
        let mut recent: VecDeque<Timestamp> = VecDeque::new();
        let mut out = Vec::new();
        let mut last_warn: Option<Timestamp> = None;
        for a in alerts {
            if self.category.is_some_and(|c| c != a.category) {
                continue;
            }
            recent.push_back(a.time);
            while let Some(&front) = recent.front() {
                if a.time - front > self.window {
                    recent.pop_front();
                } else {
                    break;
                }
            }
            if recent.len() >= self.threshold
                && last_warn.is_none_or(|w| a.time - w >= self.refractory)
            {
                out.push(a.time);
                last_warn = Some(a.time);
            }
        }
        out
    }
}

/// Warns whenever a precursor category fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrecursorPredictor {
    /// The precursor category to watch.
    pub precursor: CategoryId,
    /// Minimum spacing between consecutive warnings.
    pub refractory: Duration,
}

impl PrecursorPredictor {
    /// Creates a predictor with a 10-minute refractory period.
    pub fn new(precursor: CategoryId) -> Self {
        PrecursorPredictor {
            precursor,
            refractory: Duration::from_mins(10),
        }
    }
}

impl Predictor for PrecursorPredictor {
    fn name(&self) -> String {
        format!("precursor[{}]", self.precursor)
    }

    fn warnings(&self, alerts: &[Alert]) -> Vec<Timestamp> {
        let mut out = Vec::new();
        let mut last: Option<Timestamp> = None;
        for a in alerts {
            if a.category == self.precursor && last.is_none_or(|w| a.time - w >= self.refractory) {
                out.push(a.time);
                last = Some(a.time);
            }
        }
        out
    }
}

/// A mined precursor relationship.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrecursorRule {
    /// Category whose alerts precede the target's.
    pub precursor: CategoryId,
    /// Category being predicted.
    pub target: CategoryId,
    /// Fraction of precursor alerts followed by a target alert within
    /// the window.
    pub confidence: f64,
    /// Confidence divided by the target's base rate in a random window
    /// (how much better than chance).
    pub lift: f64,
    /// Number of precursor alerts supporting the rule.
    pub support: usize,
}

/// Mines precursor pairs: for every ordered category pair `(p, t)`,
/// measures how often a `p` alert is followed by a `t` alert within
/// `window`, and compares against chance.
///
/// Returns rules with `support >= min_support` and `lift > min_lift`,
/// sorted by descending lift.
pub fn mine_precursors(
    alerts: &[Alert],
    window: Duration,
    min_support: usize,
    min_lift: f64,
) -> Vec<PrecursorRule> {
    let mut by_cat: HashMap<CategoryId, Vec<Timestamp>> = HashMap::new();
    for a in alerts {
        by_cat.entry(a.category).or_default().push(a.time);
    }
    if alerts.is_empty() {
        return Vec::new();
    }
    let span_start = alerts.first().expect("non-empty").time;
    let span_end = alerts.last().expect("non-empty").time;
    let span = (span_end - span_start).as_secs_f64().max(1.0);
    let w = window.as_secs_f64();

    let mut rules = Vec::new();
    for (&p, p_times) in &by_cat {
        for (&t, t_times) in &by_cat {
            if p == t || p_times.len() < min_support {
                continue;
            }
            // Confidence: fraction of p alerts followed by a t alert
            // within the window.
            let mut hits = 0usize;
            for &pt in p_times {
                let idx = t_times.partition_point(|&x| x <= pt);
                if t_times.get(idx).is_some_and(|&x| x - pt <= window) {
                    hits += 1;
                }
            }
            let confidence = hits as f64 / p_times.len() as f64;
            // Base rate: probability a random window of length w
            // contains a t alert (union-bound approximation, capped).
            let base = (t_times.len() as f64 * w / span).min(1.0);
            let lift = if base > 0.0 {
                confidence / base
            } else {
                f64::INFINITY
            };
            if hits >= min_support.min(p_times.len()) && lift > min_lift && confidence > 0.0 {
                rules.push(PrecursorRule {
                    precursor: p,
                    target: t,
                    confidence,
                    lift,
                    support: hits,
                });
            }
        }
    }
    rules.sort_by(|a, b| b.lift.total_cmp(&a.lift));
    rules
}

/// The ensemble: a set of predictors whose warnings are unioned
/// (deduplicated within a merge window).
pub struct Ensemble {
    members: Vec<Box<dyn Predictor>>,
    /// Warnings within this window of each other merge into one.
    pub merge_window: Duration,
}

impl std::fmt::Debug for Ensemble {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ensemble")
            .field(
                "members",
                &self.members.iter().map(|m| m.name()).collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl Ensemble {
    /// Creates an empty ensemble with a 1-minute merge window.
    pub fn new() -> Self {
        Ensemble {
            members: Vec::new(),
            merge_window: Duration::from_mins(1),
        }
    }

    /// Adds a member predictor (builder style).
    pub fn with(mut self, p: impl Predictor + 'static) -> Self {
        self.members.push(Box::new(p));
        self
    }

    /// Builds an ensemble of precursor predictors from mined rules
    /// (one member per distinct precursor category) — the end-to-end
    /// "learn the ensemble from the logs" path.
    pub fn from_rules(rules: &[PrecursorRule]) -> Self {
        let mut seen = HashSet::new();
        let mut e = Ensemble::new();
        for r in rules {
            if seen.insert(r.precursor) {
                e.members
                    .push(Box::new(PrecursorPredictor::new(r.precursor)));
            }
        }
        e
    }

    /// Number of member predictors.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True if the ensemble has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

impl Default for Ensemble {
    fn default() -> Self {
        Self::new()
    }
}

impl Predictor for Ensemble {
    fn name(&self) -> String {
        format!("ensemble({})", self.members.len())
    }

    fn warnings(&self, alerts: &[Alert]) -> Vec<Timestamp> {
        let mut all: Vec<Timestamp> = self
            .members
            .iter()
            .flat_map(|m| m.warnings(alerts))
            .collect();
        all.sort_unstable();
        let mut out: Vec<Timestamp> = Vec::new();
        for t in all {
            if out.last().is_none_or(|&l| t - l > self.merge_window) {
                out.push(t);
            }
        }
        out
    }
}

/// Extracts per-failure onset times (the first alert of each distinct
/// ground-truth failure) for alerts of one category — the evaluation
/// target.
pub fn failure_onsets(alerts: &[Alert], category: CategoryId) -> Vec<Timestamp> {
    let mut seen: HashSet<sclog_types::FailureId> = HashSet::new();
    let mut out = Vec::new();
    for a in alerts {
        if a.category != category {
            continue;
        }
        match a.failure {
            Some(f) => {
                if seen.insert(f) {
                    out.push(a.time);
                }
            }
            None => out.push(a.time),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sclog_types::NodeId;

    fn alert(secs: i64, cat: u16) -> Alert {
        Alert::new(
            Timestamp::from_secs(secs),
            NodeId::from_index(0),
            CategoryId::from_index(cat),
            0,
        )
    }

    #[test]
    fn rate_threshold_fires_on_bursts_only() {
        let p = RateThresholdPredictor::new(None, Duration::from_secs(60), 3);
        // Sparse alerts: no warning.
        let sparse: Vec<Alert> = (0..10).map(|i| alert(i * 600, 0)).collect();
        assert!(p.warnings(&sparse).is_empty());
        // A burst of 3 within a minute: one warning (refractory).
        let burst = vec![alert(0, 0), alert(10, 0), alert(20, 0), alert(30, 0)];
        let w = p.warnings(&burst);
        assert_eq!(w, vec![Timestamp::from_secs(20)]);
    }

    #[test]
    fn rate_threshold_category_filter() {
        let p = RateThresholdPredictor::new(
            Some(CategoryId::from_index(7)),
            Duration::from_secs(60),
            2,
        );
        let alerts = vec![alert(0, 0), alert(1, 0), alert(2, 7), alert(3, 7)];
        assert_eq!(p.warnings(&alerts), vec![Timestamp::from_secs(3)]);
        assert!(p.name().contains("cat#7"));
    }

    #[test]
    fn refractory_suppresses_repeat_warnings() {
        let p = RateThresholdPredictor::new(None, Duration::from_secs(60), 2);
        // Continuous burst for 30 minutes: warnings every ≥10 min.
        let alerts: Vec<Alert> = (0..360).map(|i| alert(i * 5, 0)).collect();
        let w = p.warnings(&alerts);
        assert!(w.len() <= 4, "{w:?}");
        assert!(w.windows(2).all(|x| x[1] - x[0] >= Duration::from_mins(10)));
    }

    #[test]
    fn precursor_predictor_warns_on_precursor() {
        let p = PrecursorPredictor::new(CategoryId::from_index(1));
        let alerts = vec![alert(0, 0), alert(100, 1), alert(5000, 1)];
        let w = p.warnings(&alerts);
        assert_eq!(w.len(), 2);
        assert_eq!(w[0], Timestamp::from_secs(100));
    }

    #[test]
    fn mine_precursors_finds_planted_cascade() {
        // Category 0 fires, category 1 follows 30s later, every 5000s.
        let mut alerts = Vec::new();
        for k in 0..50i64 {
            alerts.push(alert(k * 5000, 0));
            alerts.push(alert(k * 5000 + 30, 1));
        }
        let rules = mine_precursors(&alerts, Duration::from_secs(60), 10, 2.0);
        assert!(!rules.is_empty());
        let top = rules[0];
        assert_eq!(top.precursor, CategoryId::from_index(0));
        assert_eq!(top.target, CategoryId::from_index(1));
        assert!(top.confidence > 0.9, "confidence {}", top.confidence);
        assert!(top.lift > 10.0, "lift {}", top.lift);
        // The reverse direction must NOT be a strong rule.
        assert!(!rules
            .iter()
            .any(|r| r.precursor == CategoryId::from_index(1) && r.confidence > 0.5));
    }

    #[test]
    fn mine_precursors_empty_and_independent() {
        assert!(mine_precursors(&[], Duration::from_secs(60), 5, 2.0).is_empty());
        // Interleaved but far apart: no rule above lift 2.
        let mut alerts = Vec::new();
        for k in 0..50i64 {
            alerts.push(alert(k * 7000, 0));
            alerts.push(alert(k * 7000 + 3500, 1));
        }
        let rules = mine_precursors(&alerts, Duration::from_secs(60), 10, 3.0);
        assert!(rules.is_empty(), "{rules:?}");
    }

    #[test]
    fn ensemble_unions_and_merges() {
        let e = Ensemble::new()
            .with(PrecursorPredictor::new(CategoryId::from_index(0)))
            .with(PrecursorPredictor::new(CategoryId::from_index(1)));
        assert_eq!(e.len(), 2);
        assert!(!e.is_empty());
        // Both categories fire within the merge window: one warning.
        let alerts = vec![alert(100, 0), alert(110, 1), alert(9000, 1)];
        let w = e.warnings(&alerts);
        assert_eq!(w.len(), 2, "{w:?}");
    }

    #[test]
    fn ensemble_from_rules_dedups_precursors() {
        let rules = vec![
            PrecursorRule {
                precursor: CategoryId::from_index(0),
                target: CategoryId::from_index(1),
                confidence: 0.9,
                lift: 10.0,
                support: 20,
            },
            PrecursorRule {
                precursor: CategoryId::from_index(0),
                target: CategoryId::from_index(2),
                confidence: 0.5,
                lift: 5.0,
                support: 10,
            },
            PrecursorRule {
                precursor: CategoryId::from_index(3),
                target: CategoryId::from_index(1),
                confidence: 0.4,
                lift: 4.0,
                support: 8,
            },
        ];
        let e = Ensemble::from_rules(&rules);
        assert_eq!(e.len(), 2, "one member per distinct precursor");
    }

    #[test]
    fn failure_onsets_dedup_by_failure_id() {
        use sclog_types::FailureId;
        let mut a1 = alert(10, 0);
        a1.failure = Some(FailureId(1));
        let mut a2 = alert(12, 0);
        a2.failure = Some(FailureId(1));
        let mut a3 = alert(500, 0);
        a3.failure = Some(FailureId(2));
        let onsets = failure_onsets(&[a1, a2, a3], CategoryId::from_index(0));
        assert_eq!(
            onsets,
            vec![Timestamp::from_secs(10), Timestamp::from_secs(500)]
        );
    }
}
