//! The three concrete line formats and their parsers.

use crate::error::ParseError;
use sclog_types::time::{days_in_month, month_from_abbrev};
use sclog_types::{
    BglSeverity, Duration, Message, Severity, SourceInterner, SyslogSeverity, SystemId, Timestamp,
};

/// Mutable state threaded through parsing: the source interner and the
/// year-recovery state for formats (BSD syslog) that omit the year.
#[derive(Debug)]
pub struct ParseContext {
    /// Interner mapping source names to compact ids.
    pub interner: SourceInterner,
    year: i32,
    last_month: u32,
}

impl ParseContext {
    /// Creates a context; `start_year` seeds year recovery for syslog.
    pub fn new(start_year: i32) -> Self {
        ParseContext {
            interner: SourceInterner::new(),
            year: start_year,
            last_month: 1,
        }
    }

    /// Resolves the year for a syslog month token, detecting New Year
    /// rollover (a month far smaller than the last seen one).
    fn resolve_year(&mut self, month: u32) -> i32 {
        if month + 6 < self.last_month {
            self.year += 1;
        }
        self.last_month = month;
        self.year
    }
}

/// A log line format: renders [`Message`]s to their native text form and
/// parses text back.
///
/// Implementations must round-trip: `parse(render(m))` equals `m` up to
/// the format's timestamp granularity and severity support.
pub trait LineFormat {
    /// Renders a message as one log line (no trailing newline),
    /// appending to `out`. This is the buffer-reuse primitive the
    /// tagging hot loop uses; `out` is *not* cleared first.
    fn render_into(&self, msg: &Message, interner: &SourceInterner, out: &mut String);

    /// Renders a message as one log line (no trailing newline).
    ///
    /// Allocating convenience wrapper over [`LineFormat::render_into`].
    fn render(&self, msg: &Message, interner: &SourceInterner) -> String {
        let mut out = String::new();
        self.render_into(msg, interner, &mut out);
        out
    }

    /// Parses one line.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError`] only when the line is beyond recovery
    /// (empty, truncated before the body, or unrecoverable timestamp);
    /// garbled source/severity tokens are tolerated.
    fn parse(
        &self,
        line: &str,
        system: SystemId,
        ctx: &mut ParseContext,
    ) -> Result<Message, ParseError>;
}

/// BSD syslog: `Nov  9 12:01:01 host facility: body`, optionally with a
/// severity token after the host (Red Storm's syslog path).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyslogFormat {
    severity: bool,
}

impl SyslogFormat {
    /// The severity-less variant used by Liberty, Spirit, Thunderbird.
    pub fn plain() -> Self {
        SyslogFormat { severity: false }
    }

    /// The variant that records a severity token (Red Storm syslog).
    pub fn with_severity() -> Self {
        SyslogFormat { severity: true }
    }
}

impl LineFormat for SyslogFormat {
    fn render_into(&self, msg: &Message, interner: &SourceInterner, out: &mut String) {
        use std::fmt::Write as _;
        let host = interner.name(msg.source);
        msg.time.write_syslog(out);
        let facility = if msg.facility.is_empty() {
            "unknown"
        } else {
            &msg.facility
        };
        if self.severity {
            let sev = msg.severity.as_syslog().map_or("-", SyslogSeverity::name);
            let _ = write!(out, " {host} {sev} {facility}: {body}", body = msg.body);
        } else {
            let _ = write!(out, " {host} {facility}: {body}", body = msg.body);
        }
    }

    fn parse(
        &self,
        line: &str,
        system: SystemId,
        ctx: &mut ParseContext,
    ) -> Result<Message, ParseError> {
        if line.trim().is_empty() {
            return Err(ParseError::EmptyLine);
        }
        let needed = if self.severity { 5 } else { 4 };
        let mut it = line.split_whitespace();
        let mon_tok = it.next().ok_or(ParseError::EmptyLine)?;
        let day_tok = it.next().ok_or(ParseError::TooShort { found: 1, needed })?;
        let time_tok = it.next().ok_or(ParseError::TooShort { found: 2, needed })?;
        let host = it.next().ok_or(ParseError::TooShort { found: 3, needed })?;

        let month = month_from_abbrev(mon_tok).ok_or_else(|| ParseError::BadTimestamp {
            token: format!("{mon_tok} {day_tok} {time_tok}"),
        })?;
        let day: u32 = day_tok.parse().map_err(|_| ParseError::BadTimestamp {
            token: format!("{mon_tok} {day_tok} {time_tok}"),
        })?;
        let (hh, mm, ss) = parse_hms(time_tok).ok_or_else(|| ParseError::BadTimestamp {
            token: format!("{mon_tok} {day_tok} {time_tok}"),
        })?;
        let year = ctx.resolve_year(month);
        if day == 0 || day > days_in_month(year, month) || hh > 23 || mm > 59 || ss > 59 {
            return Err(ParseError::BadTimestamp {
                token: format!("{mon_tok} {day_tok} {time_tok}"),
            });
        }
        let time = Timestamp::from_ymd_hms(year, month, day, hh, mm, ss);
        let source = ctx.interner.intern(host);

        let mut severity = Severity::None;
        let mut rest: &str = remainder_after(line, &[mon_tok, day_tok, time_tok, host]);
        if self.severity {
            let mut it2 = rest.split_whitespace();
            if let Some(tok) = it2.next() {
                // A garbled severity token is tolerated: it becomes part
                // of the facility/body instead.
                if let Ok(sev) = tok.parse::<SyslogSeverity>() {
                    severity = Severity::Syslog(sev);
                    rest = remainder_after(rest, &[tok]);
                }
            }
        }

        // Facility is the first token ending in ':'; if absent the whole
        // remainder is body with an empty facility (seen on corrupted
        // lines).
        let (facility, body) = split_facility(rest);
        Ok(Message {
            system,
            time,
            source,
            facility,
            severity,
            body,
        })
    }
}

/// BG/L RAS export: `2005-06-03-15.42.50.363779 LOCATION RAS FACILITY
/// SEVERITY body`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BglFormat;

impl LineFormat for BglFormat {
    fn render_into(&self, msg: &Message, interner: &SourceInterner, out: &mut String) {
        use std::fmt::Write as _;
        let sev = msg.severity.as_bgl().map_or("-", BglSeverity::name);
        let facility = if msg.facility.is_empty() {
            "UNKNOWN"
        } else {
            &msg.facility
        };
        msg.time.write_bgl(out);
        let _ = write!(
            out,
            " {loc} RAS {facility} {sev} {body}",
            loc = interner.name(msg.source),
            body = msg.body
        );
    }

    fn parse(
        &self,
        line: &str,
        system: SystemId,
        ctx: &mut ParseContext,
    ) -> Result<Message, ParseError> {
        if line.trim().is_empty() {
            return Err(ParseError::EmptyLine);
        }
        let mut it = line.split_whitespace();
        let ts_tok = it.next().ok_or(ParseError::EmptyLine)?;
        let loc = it.next().ok_or(ParseError::TooShort {
            found: 1,
            needed: 5,
        })?;
        let ras = it.next().ok_or(ParseError::TooShort {
            found: 2,
            needed: 5,
        })?;
        let facility = it.next().ok_or(ParseError::TooShort {
            found: 3,
            needed: 5,
        })?;
        let sev_tok = it.next().ok_or(ParseError::TooShort {
            found: 4,
            needed: 5,
        })?;

        let time = parse_bgl_timestamp(ts_tok).ok_or_else(|| ParseError::BadTimestamp {
            token: ts_tok.to_owned(),
        })?;
        let source = ctx.interner.intern(loc);
        // "RAS" marker may be garbled; tolerated (it carries no data).
        let _ = ras;
        let severity = sev_tok
            .parse::<BglSeverity>()
            .map_or(Severity::None, Severity::Bgl);
        let body = remainder_after(line, &[ts_tok, loc, ras, facility, sev_tok]).to_owned();
        Ok(Message {
            system,
            time,
            source,
            facility: facility.to_owned(),
            severity,
            body,
        })
    }
}

/// Red Storm RAS-network event path: `EV <epoch-secs> <component>
/// <event> body`. Reliable TCP transport, no severity analog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EventFormat;

impl LineFormat for EventFormat {
    fn render_into(&self, msg: &Message, interner: &SourceInterner, out: &mut String) {
        use std::fmt::Write as _;
        let facility = if msg.facility.is_empty() {
            "ec_event"
        } else {
            &msg.facility
        };
        let _ = write!(
            out,
            "EV {secs} {src} {facility} {body}",
            secs = msg.time.as_secs(),
            src = interner.name(msg.source),
            body = msg.body
        );
    }

    fn parse(
        &self,
        line: &str,
        system: SystemId,
        ctx: &mut ParseContext,
    ) -> Result<Message, ParseError> {
        if line.trim().is_empty() {
            return Err(ParseError::EmptyLine);
        }
        let mut it = line.split_whitespace();
        let marker = it.next().ok_or(ParseError::EmptyLine)?;
        let secs_tok = it.next().ok_or(ParseError::TooShort {
            found: 1,
            needed: 4,
        })?;
        let src = it.next().ok_or(ParseError::TooShort {
            found: 2,
            needed: 4,
        })?;
        let event = it.next().ok_or(ParseError::TooShort {
            found: 3,
            needed: 4,
        })?;
        // Marker may be garbled; tolerated.
        let _ = marker;
        let secs: i64 = secs_tok.parse().map_err(|_| ParseError::BadTimestamp {
            token: secs_tok.to_owned(),
        })?;
        let body = remainder_after(line, &[marker, secs_tok, src, event]).to_owned();
        Ok(Message {
            system,
            time: Timestamp::from_secs(secs),
            source: ctx.interner.intern(src),
            facility: event.to_owned(),
            severity: Severity::None,
            body,
        })
    }
}

/// Parses `HH:MM:SS`.
fn parse_hms(tok: &str) -> Option<(u32, u32, u32)> {
    let mut parts = tok.split(':');
    let hh = parts.next()?.parse().ok()?;
    let mm = parts.next()?.parse().ok()?;
    let ss = parts.next()?.parse().ok()?;
    if parts.next().is_some() {
        return None;
    }
    Some((hh, mm, ss))
}

/// Parses `YYYY-MM-DD-HH.MM.SS.ffffff`.
fn parse_bgl_timestamp(tok: &str) -> Option<Timestamp> {
    let mut parts = tok.splitn(4, '-');
    let year: i32 = parts.next()?.parse().ok()?;
    let month: u32 = parts.next()?.parse().ok()?;
    let day: u32 = parts.next()?.parse().ok()?;
    let tod = parts.next()?;
    let mut t = tod.split('.');
    let hh: u32 = t.next()?.parse().ok()?;
    let mm: u32 = t.next()?.parse().ok()?;
    let ss: u32 = t.next()?.parse().ok()?;
    let us: u32 = t.next()?.parse().ok()?;
    if !(1..=12).contains(&month)
        || day == 0
        || day > days_in_month(year, month)
        || hh > 23
        || mm > 59
        || ss > 59
        || us >= 1_000_000
    {
        return None;
    }
    Some(Timestamp::from_ymd_hms(year, month, day, hh, mm, ss) + Duration::from_micros(us.into()))
}

/// Returns the tail of `line` after the given leading tokens, with one
/// separating space consumed.
fn remainder_after<'a>(line: &'a str, tokens: &[&str]) -> &'a str {
    let mut rest = line.trim_start();
    for tok in tokens {
        rest = rest
            .strip_prefix(tok)
            .unwrap_or(rest)
            .trim_start_matches([' ', '\t']);
    }
    rest
}

/// Splits `facility: body`, returning an empty facility if no token
/// ends with a colon.
fn split_facility(rest: &str) -> (String, String) {
    let mut it = rest.splitn(2, char::is_whitespace);
    match it.next() {
        Some(first) if first.ends_with(':') && first.len() > 1 => {
            let facility = first[..first.len() - 1].to_owned();
            let body = it.next().unwrap_or("").to_owned();
            (facility, body)
        }
        _ => (String::new(), rest.to_owned()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sclog_types::NodeId;

    fn msg(
        system: SystemId,
        time: Timestamp,
        sev: Severity,
        facility: &str,
        body: &str,
    ) -> Message {
        Message {
            system,
            time,
            source: NodeId::from_index(0),
            facility: facility.to_owned(),
            severity: sev,
            body: body.to_owned(),
        }
    }

    fn interner_with(name: &str) -> SourceInterner {
        let mut i = SourceInterner::new();
        i.intern(name);
        i
    }

    #[test]
    fn syslog_round_trip() {
        let f = SyslogFormat::plain();
        let interner = interner_with("dn228");
        let m = msg(
            SystemId::Liberty,
            Timestamp::from_ymd_hms(2005, 3, 7, 14, 30, 5),
            Severity::None,
            "pbs_mom",
            "task_check, cannot tm_reply to 4418 task 1",
        );
        let line = f.render(&m, &interner);
        assert_eq!(
            line,
            "Mar  7 14:30:05 dn228 pbs_mom: task_check, cannot tm_reply to 4418 task 1"
        );
        let mut ctx = ParseContext::new(2005);
        let parsed = f.parse(&line, SystemId::Liberty, &mut ctx).unwrap();
        assert_eq!(parsed.time, m.time);
        assert_eq!(ctx.interner.name(parsed.source), "dn228");
        assert_eq!(parsed.facility, "pbs_mom");
        assert_eq!(parsed.body, m.body);
        assert_eq!(parsed.severity, Severity::None);
    }

    #[test]
    fn syslog_with_severity_round_trip() {
        let f = SyslogFormat::with_severity();
        let interner = interner_with("nid00042");
        let m = msg(
            SystemId::RedStorm,
            Timestamp::from_ymd_hms(2006, 3, 19, 0, 0, 1),
            Severity::Syslog(SyslogSeverity::Crit),
            "kernel",
            "LustreError: timeout (sent at 300s ago)",
        );
        let line = f.render(&m, &interner);
        assert!(line.contains(" CRIT kernel: "), "{line}");
        let mut ctx = ParseContext::new(2006);
        let parsed = f.parse(&line, SystemId::RedStorm, &mut ctx).unwrap();
        assert_eq!(parsed.severity, Severity::Syslog(SyslogSeverity::Crit));
        assert_eq!(parsed.facility, "kernel");
        assert_eq!(parsed.body, m.body);
    }

    #[test]
    fn syslog_year_rollover() {
        let f = SyslogFormat::plain();
        let mut ctx = ParseContext::new(2004);
        let dec = f
            .parse("Dec 31 23:59:59 ln1 kernel: a", SystemId::Liberty, &mut ctx)
            .unwrap();
        let jan = f
            .parse("Jan  1 00:00:10 ln1 kernel: b", SystemId::Liberty, &mut ctx)
            .unwrap();
        assert_eq!(dec.time.to_civil().0, 2004);
        assert_eq!(jan.time.to_civil().0, 2005);
        assert_eq!(jan.time - dec.time, Duration::from_secs(11));
    }

    #[test]
    fn syslog_corrupted_severity_is_tolerated() {
        let f = SyslogFormat::with_severity();
        let mut ctx = ParseContext::new(2006);
        let parsed = f
            .parse(
                "Mar 19 10:00:00 nid1 CRXT kernel: body here",
                SystemId::RedStorm,
                &mut ctx,
            )
            .unwrap();
        // Garbled severity: token absorbed, severity None. The garbled
        // token is not a facility (no colon), so facility is empty and
        // the body keeps everything.
        assert_eq!(parsed.severity, Severity::None);
        assert!(parsed.body.contains("body here"));
    }

    #[test]
    fn syslog_missing_facility_keeps_body() {
        let f = SyslogFormat::plain();
        let mut ctx = ParseContext::new(2005);
        let parsed = f
            .parse(
                "Jan  2 03:04:05 sn373 no colon anywhere",
                SystemId::Spirit,
                &mut ctx,
            )
            .unwrap();
        assert_eq!(parsed.facility, "");
        assert_eq!(parsed.body, "no colon anywhere");
    }

    #[test]
    fn syslog_rejects_garbage_timestamp() {
        let f = SyslogFormat::plain();
        let mut ctx = ParseContext::new(2005);
        assert!(matches!(
            f.parse("Foo 99 99:99:99 host k: b", SystemId::Spirit, &mut ctx),
            Err(ParseError::BadTimestamp { .. })
        ));
        assert!(matches!(
            f.parse("Jan 42 03:04:05 host k: b", SystemId::Spirit, &mut ctx),
            Err(ParseError::BadTimestamp { .. })
        ));
        assert_eq!(
            f.parse("", SystemId::Spirit, &mut ctx),
            Err(ParseError::EmptyLine)
        );
        assert!(matches!(
            f.parse("Jan 2", SystemId::Spirit, &mut ctx),
            Err(ParseError::TooShort { .. })
        ));
    }

    #[test]
    fn bgl_round_trip() {
        let f = BglFormat;
        let interner = interner_with("R02-M1-N0-C:J12-U11");
        let m = Message {
            system: SystemId::BlueGeneL,
            time: Timestamp::from_ymd_hms(2005, 6, 3, 15, 42, 50) + Duration::from_micros(363_779),
            source: NodeId::from_index(0),
            facility: "KERNEL".into(),
            severity: Severity::Bgl(BglSeverity::Info),
            body: "instruction cache parity error corrected".into(),
        };
        let line = f.render(&m, &interner);
        assert_eq!(
            line,
            "2005-06-03-15.42.50.363779 R02-M1-N0-C:J12-U11 RAS KERNEL INFO instruction cache parity error corrected"
        );
        let mut ctx = ParseContext::new(2005);
        let parsed = f.parse(&line, SystemId::BlueGeneL, &mut ctx).unwrap();
        assert_eq!(parsed.time, m.time);
        assert_eq!(parsed.severity, m.severity);
        assert_eq!(parsed.facility, "KERNEL");
        assert_eq!(parsed.body, m.body);
        assert_eq!(ctx.interner.name(parsed.source), "R02-M1-N0-C:J12-U11");
    }

    #[test]
    fn bgl_microsecond_precision_survives() {
        let f = BglFormat;
        let mut ctx = ParseContext::new(2005);
        let parsed = f
            .parse(
                "2005-06-03-15.42.50.000001 R00 RAS KERNEL FATAL x",
                SystemId::BlueGeneL,
                &mut ctx,
            )
            .unwrap();
        assert_eq!(parsed.time.subsec_micros(), 1);
        assert_eq!(parsed.severity, Severity::Bgl(BglSeverity::Fatal));
    }

    #[test]
    fn bgl_corrupted_severity_tolerated() {
        let f = BglFormat;
        let mut ctx = ParseContext::new(2005);
        let parsed = f
            .parse(
                "2005-06-03-15.42.50.000000 R00 RAS KERNEL INF%% data TLB error",
                SystemId::BlueGeneL,
                &mut ctx,
            )
            .unwrap();
        assert_eq!(parsed.severity, Severity::None);
        assert_eq!(parsed.body, "data TLB error");
    }

    #[test]
    fn bgl_rejects_bad_timestamp() {
        let f = BglFormat;
        let mut ctx = ParseContext::new(2005);
        assert!(matches!(
            f.parse(
                "garbage R00 RAS KERNEL INFO x",
                SystemId::BlueGeneL,
                &mut ctx
            ),
            Err(ParseError::BadTimestamp { .. })
        ));
        assert!(matches!(
            f.parse(
                "2005-13-03-15.42.50.000000 R00 RAS KERNEL INFO x",
                SystemId::BlueGeneL,
                &mut ctx
            ),
            Err(ParseError::BadTimestamp { .. })
        ));
    }

    #[test]
    fn event_round_trip() {
        let f = EventFormat;
        let interner = interner_with("c3-0c1s4n2");
        let m = msg(
            SystemId::RedStorm,
            Timestamp::from_secs(1_142_800_000),
            Severity::None,
            "ec_heartbeat_stop",
            "src:::c3-0c1s4n2 svc:::c3-0c1s4n2 warn node heartbeat_fault",
        );
        let line = f.render(&m, &interner);
        assert!(line.starts_with("EV 1142800000 c3-0c1s4n2 ec_heartbeat_stop "));
        let mut ctx = ParseContext::new(2006);
        let parsed = f.parse(&line, SystemId::RedStorm, &mut ctx).unwrap();
        assert_eq!(parsed.time, m.time);
        assert_eq!(parsed.facility, "ec_heartbeat_stop");
        assert_eq!(parsed.body, m.body);
    }

    #[test]
    fn event_rejects_bad_epoch() {
        let f = EventFormat;
        let mut ctx = ParseContext::new(2006);
        assert!(matches!(
            f.parse("EV notanumber c0 ev body", SystemId::RedStorm, &mut ctx),
            Err(ParseError::BadTimestamp { .. })
        ));
    }

    #[test]
    fn truncated_body_still_parses() {
        // The paper's corrupted VAPI examples: truncated bodies.
        let f = SyslogFormat::plain();
        let mut ctx = ParseContext::new(2005);
        let parsed = f
            .parse(
                "Nov  9 12:01:01 tbird-admin1 kernel: VIPKL(1): [create_mr] MM_bld_hh_mr failed (-253:VAPI_EAGAI",
                SystemId::Thunderbird,
                &mut ctx,
            )
            .unwrap();
        assert!(parsed.body.ends_with("VAPI_EAGAI"));
    }
}

/// Red Storm's mixed log: RAS-network event lines (`EV …`) interleaved
/// with severity-carrying syslog lines, mirroring the paper's "several
/// logging paths".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RedStormFormat;

impl LineFormat for RedStormFormat {
    fn render_into(&self, msg: &Message, interner: &SourceInterner, out: &mut String) {
        if msg.facility.starts_with("ec_") {
            EventFormat.render_into(msg, interner, out)
        } else {
            SyslogFormat::with_severity().render_into(msg, interner, out)
        }
    }

    fn parse(
        &self,
        line: &str,
        system: SystemId,
        ctx: &mut ParseContext,
    ) -> Result<Message, ParseError> {
        if line.starts_with("EV ") {
            EventFormat.parse(line, system, ctx)
        } else {
            SyslogFormat::with_severity().parse(line, system, ctx)
        }
    }
}

#[cfg(test)]
mod redstorm_tests {
    use super::*;
    use sclog_types::NodeId;

    #[test]
    fn mixed_format_dispatches_both_paths() {
        let f = RedStormFormat;
        let mut interner = SourceInterner::new();
        interner.intern("c3-0c1s4n2");
        let ev = Message {
            system: SystemId::RedStorm,
            time: Timestamp::from_secs(1_142_800_000),
            source: NodeId::from_index(0),
            facility: "ec_heartbeat_stop".into(),
            severity: Severity::None,
            body: "src:::c3-0c1s4n2 warn node heartbeat_fault".into(),
        };
        let sys = Message {
            system: SystemId::RedStorm,
            time: Timestamp::from_secs(1_142_800_000),
            source: NodeId::from_index(0),
            facility: "kernel".into(),
            severity: Severity::Syslog(SyslogSeverity::Error),
            body: "LustreError: timeout".into(),
        };
        let ev_line = f.render(&ev, &interner);
        let sys_line = f.render(&sys, &interner);
        assert!(ev_line.starts_with("EV "));
        assert!(!sys_line.starts_with("EV "));
        let mut ctx = ParseContext::new(2006);
        let p1 = f.parse(&ev_line, SystemId::RedStorm, &mut ctx).unwrap();
        let p2 = f.parse(&sys_line, SystemId::RedStorm, &mut ctx).unwrap();
        assert_eq!(p1.facility, "ec_heartbeat_stop");
        assert_eq!(p1.time, ev.time);
        assert_eq!(p2.severity, Severity::Syslog(SyslogSeverity::Error));
    }
}
