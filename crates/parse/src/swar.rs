//! SWAR (SIMD-within-a-register) newline scanning.
//!
//! The line chunker's inner loop is "find the next `\n`"; at
//! 178 million lines a byte-at-a-time scan is the single hottest
//! instruction stream in ingest. This module scans a `u64` lane at a
//! time using the classic broadcast-XOR + zero-byte trick:
//!
//! 1. XOR the lane with `\n` broadcast to all eight bytes — a newline
//!    byte becomes `0x00`, everything else nonzero.
//! 2. Detect zero bytes with `(w - 0x01…01) & !w & 0x80…80`: only a
//!    byte that was zero can both borrow into its high bit and keep
//!    `!w`'s high bit set.
//! 3. The first match is the lowest set high bit:
//!    `trailing_zeros() / 8` (little-endian byte order).
//!
//! The hot loop is unrolled two lanes deep: both 16 bytes load and
//! classify before either lane's hit test, so adjacent lanes'
//! dependency chains overlap instead of serializing on the branch.
//! The scan falls back to a single lane, then a scalar tail, for the
//! final bytes, and counts lanes *loaded* (both lanes of a pair, even
//! when the first hits) so the chunker's `chunker.swar_blocks`
//! observability counter reflects work done, not work that was
//! retroactively unnecessary.
//!
//! The same zero-byte trick classifies ASCII whitespace for the field
//! splitter ([`ascii_whitespace_mask`]): equality against space plus
//! a `0x09..=0x0D` range test, both branch-free.

/// Bytes per SWAR lane: one `u64`.
pub const SWAR_LANE: usize = 8;

/// All-lanes broadcast of `0x01`, the subtrahend of the zero-byte trick.
const LO: u64 = 0x0101_0101_0101_0101;
/// All-lanes broadcast of `0x80`, the high-bit mask of the zero-byte
/// trick — also the "every byte matched" value of a classifier mask.
pub(crate) const HI: u64 = 0x8080_8080_8080_8080;
/// `\n` broadcast to all eight lanes.
const NL: u64 = 0x0A0A_0A0A_0A0A_0A0A;
/// `' '` broadcast to all eight lanes.
const SP: u64 = 0x2020_2020_2020_2020;

/// Finds the first `\n` in `haystack` two `u64` lanes at a time,
/// adding the number of full 8-byte lanes loaded to `lanes`.
///
/// Behaviourally identical to
/// `haystack.iter().position(|&b| b == b'\n')` (see
/// [`find_newline_scalar`], the reference the property suite compares
/// against); the lane count feeds the `chunker.swar_blocks` counter
/// and counts both lanes of an unrolled pair once loaded.
///
/// # Examples
///
/// ```
/// use sclog_parse::swar::find_newline_counted;
///
/// let mut lanes = 0;
/// assert_eq!(find_newline_counted(b"0123456789\nrest.", &mut lanes), Some(10));
/// assert_eq!(lanes, 2, "one unrolled pair: both lanes load");
/// assert_eq!(find_newline_counted(b"short", &mut lanes), None);
/// ```
pub fn find_newline_counted(haystack: &[u8], lanes: &mut u64) -> Option<usize> {
    let mut i = 0;
    let mut scanned = 0u64;
    // Two lanes per iteration; both hit masks are computed before
    // either test so the loads pipeline.
    while let Some(pair) = haystack.get(i..i + 2 * SWAR_LANE) {
        let w0 = u64::from_le_bytes(pair[..SWAR_LANE].try_into().expect("8-byte slice")) ^ NL;
        let w1 = u64::from_le_bytes(pair[SWAR_LANE..].try_into().expect("8-byte slice")) ^ NL;
        scanned += 2;
        let hit0 = w0.wrapping_sub(LO) & !w0 & HI;
        let hit1 = w1.wrapping_sub(LO) & !w1 & HI;
        if hit0 != 0 {
            *lanes += scanned;
            return Some(i + (hit0.trailing_zeros() / 8) as usize);
        }
        if hit1 != 0 {
            *lanes += scanned;
            return Some(i + SWAR_LANE + (hit1.trailing_zeros() / 8) as usize);
        }
        i += 2 * SWAR_LANE;
    }
    // At most one full lane remains after the unrolled loop.
    if let Some(lane) = haystack.get(i..i + SWAR_LANE) {
        let w = u64::from_le_bytes(lane.try_into().expect("8-byte slice")) ^ NL;
        scanned += 1;
        let hit = w.wrapping_sub(LO) & !w & HI;
        if hit != 0 {
            *lanes += scanned;
            return Some(i + (hit.trailing_zeros() / 8) as usize);
        }
        i += SWAR_LANE;
    }
    *lanes += scanned;
    // Scalar tail: fewer than eight bytes remain.
    haystack[i..]
        .iter()
        .position(|&b| b == b'\n')
        .map(|p| i + p)
}

/// Marks the high bit of every ASCII-whitespace byte in `lane`.
///
/// Whitespace here is what `char::is_whitespace` says for ASCII:
/// space (`0x20`) and the `0x09..=0x0D` control range (tab, newline,
/// vertical tab, form feed, carriage return). **Every byte of `lane`
/// must be `< 0x80`** — the cheap carry-based comparisons below are
/// only order-preserving for bytes with a clear high bit, which is
/// why [`crate::field_spans`] gates this path on `str::is_ascii`.
///
/// # Examples
///
/// ```
/// use sclog_parse::swar::ascii_whitespace_mask;
///
/// let lane = u64::from_le_bytes(*b"a b\tcd\ne");
/// let mask = ascii_whitespace_mask(lane);
/// let bytes = mask.to_le_bytes();
/// assert_eq!(bytes[1], 0x80, "space");
/// assert_eq!(bytes[3], 0x80, "tab");
/// assert_eq!(bytes[6], 0x80, "newline");
/// assert_eq!(bytes[0] | bytes[2] | bytes[4] | bytes[5] | bytes[7], 0);
/// ```
pub fn ascii_whitespace_mask(lane: u64) -> u64 {
    debug_assert_eq!(lane & HI, 0, "caller must supply ASCII bytes");
    // b == 0x20, by the zero-byte trick on the XOR.
    let sp = lane ^ SP;
    let is_space = sp.wrapping_sub(LO) & !sp & HI;
    // 0x09 <= b < 0x0E, by carry into the high bit: adding
    // 0x80 - n sets a byte's high bit exactly when b >= n (valid
    // because b < 0x80 keeps the sum inside the byte).
    let ge_tab = lane.wrapping_add(broadcast(0x80 - 0x09)) & HI;
    let lt_so = !(lane.wrapping_add(broadcast(0x80 - 0x0E))) & HI;
    is_space | (ge_tab & lt_so)
}

/// `byte` copied into all eight lanes.
const fn broadcast(byte: u8) -> u64 {
    LO.wrapping_mul(byte as u64)
}

/// The byte-at-a-time reference implementation of
/// [`find_newline_counted`]'s search (without lane accounting).
///
/// Kept public so the property suite can state the equivalence
/// SWAR ≡ scalar directly against the shipped code rather than a
/// reimplementation inside the test.
pub fn find_newline_scalar(haystack: &[u8]) -> Option<usize> {
    haystack.iter().position(|&b| b == b'\n')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn find(h: &[u8]) -> Option<usize> {
        let mut lanes = 0;
        let got = find_newline_counted(h, &mut lanes);
        assert_eq!(got, find_newline_scalar(h), "{h:?}");
        got
    }

    #[test]
    fn empty_and_short_inputs() {
        assert_eq!(find(b""), None);
        assert_eq!(find(b"abc"), None);
        assert_eq!(find(b"\n"), Some(0));
        assert_eq!(find(b"ab\n"), Some(2));
    }

    #[test]
    fn every_position_in_a_three_lane_window() {
        for pos in 0..24 {
            let mut bytes = vec![b'x'; 24];
            bytes[pos] = b'\n';
            assert_eq!(find(&bytes), Some(pos), "pos {pos}");
        }
    }

    #[test]
    fn first_of_many_newlines_wins() {
        for first in 0..16 {
            let mut bytes = vec![b'\n'; 32];
            for b in bytes.iter_mut().take(first) {
                *b = b'.';
            }
            assert_eq!(find(&bytes), Some(first));
        }
    }

    #[test]
    fn high_bytes_and_nuls_are_not_false_positives() {
        // 0x8A = 0x0A with the high bit set; 0x00 exercises the
        // borrow path of the zero-byte trick.
        assert_eq!(find(&[0x8A; 16]), None);
        assert_eq!(find(&[0x00; 16]), None);
        assert_eq!(
            find(&[0x0B, 0x09, 0x8A, 0x00, 0xFF, 0x0A, 0x00, 0x0A]),
            Some(5)
        );
    }

    #[test]
    fn lane_count_reflects_lanes_examined() {
        let mut lanes = 0;
        // Hit in the first lane of an unrolled pair: both lanes of
        // the pair load together, so both count.
        assert_eq!(
            find_newline_counted(b"\nxxxxxxxxxxxxxxx", &mut lanes),
            Some(0)
        );
        assert_eq!(lanes, 2);
        // No newline in 16 bytes: both lanes examined.
        lanes = 0;
        assert_eq!(find_newline_counted(&[b'x'; 16], &mut lanes), None);
        assert_eq!(lanes, 2);
        // 8..16 bytes: the single-lane step after the unrolled loop.
        lanes = 0;
        assert_eq!(find_newline_counted(b"xxxxxxxxx\n", &mut lanes), Some(9));
        assert_eq!(lanes, 1);
        // Tail-only input: no lanes at all.
        lanes = 0;
        assert_eq!(find_newline_counted(b"tail\n", &mut lanes), Some(4));
        assert_eq!(lanes, 0);
    }
}
