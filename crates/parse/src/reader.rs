//! Streaming log reading with parse statistics.

use crate::error::ParseError;
use crate::format::{LineFormat, ParseContext};
use sclog_types::{Message, SystemId};

/// Counters describing how a log parsed.
///
/// The paper notes that even highly engineered RAS systems produce
/// corrupted entries; these statistics quantify how much of a log was
/// recoverable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ParseStats {
    /// Lines successfully parsed into messages.
    pub parsed: u64,
    /// Empty lines skipped.
    pub empty: u64,
    /// Lines rejected for an unrecoverable timestamp.
    pub bad_timestamp: u64,
    /// Lines rejected as truncated beyond recovery.
    pub too_short: u64,
}

impl ParseStats {
    /// Total lines seen.
    pub fn total(&self) -> u64 {
        self.parsed + self.empty + self.bad_timestamp + self.too_short
    }

    /// Lines rejected for any reason other than being empty.
    pub fn rejected(&self) -> u64 {
        self.bad_timestamp + self.too_short
    }

    fn record_error(&mut self, err: &ParseError) {
        match err {
            ParseError::EmptyLine => self.empty += 1,
            ParseError::BadTimestamp { .. } => self.bad_timestamp += 1,
            ParseError::TooShort { .. } => self.too_short += 1,
        }
    }
}

/// Parses a stream of log lines in one system's format, accumulating
/// messages and [`ParseStats`].
///
/// # Examples
///
/// ```
/// use sclog_parse::{LogReader, SyslogFormat};
/// use sclog_types::SystemId;
///
/// let mut reader = LogReader::new(SystemId::Liberty, Box::new(SyslogFormat::plain()), 2004);
/// reader.push_line("Dec 12 00:00:01 ln1 kernel: hello");
/// reader.push_line("");
/// reader.push_line("corrupted beyond recovery");
/// assert_eq!(reader.stats().parsed, 1);
/// assert_eq!(reader.stats().empty, 1);
/// assert_eq!(reader.stats().rejected(), 1);
/// ```
pub struct LogReader {
    system: SystemId,
    format: Box<dyn LineFormat>,
    ctx: ParseContext,
    messages: Vec<Message>,
    stats: ParseStats,
}

impl std::fmt::Debug for LogReader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogReader")
            .field("system", &self.system)
            .field("messages", &self.messages.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl LogReader {
    /// Creates a reader for one system.
    ///
    /// `start_year` seeds year recovery for formats without a year
    /// field; pass the year of the first log line (Table 2's start
    /// dates).
    pub fn new(system: SystemId, format: Box<dyn LineFormat>, start_year: i32) -> Self {
        LogReader {
            system,
            format,
            ctx: ParseContext::new(start_year),
            messages: Vec::new(),
            stats: ParseStats::default(),
        }
    }

    /// Creates a reader using the system's native format
    /// ([`crate::format_for`]) and Table 2 start year.
    pub fn for_system(system: SystemId) -> Self {
        let start_year = system.spec().start_date.0;
        LogReader::new(system, crate::format_for(system), start_year)
    }

    /// Parses one line, storing the message on success.
    ///
    /// Returns the index of the stored message, or `None` if the line
    /// was rejected (the rejection is counted in [`Self::stats`]).
    pub fn push_line(&mut self, line: &str) -> Option<usize> {
        match self.format.parse(line, self.system, &mut self.ctx) {
            Ok(msg) => {
                self.messages.push(msg);
                self.stats.parsed += 1;
                Some(self.messages.len() - 1)
            }
            Err(err) => {
                self.stats.record_error(&err);
                None
            }
        }
    }

    /// Parses every line from an iterator.
    pub fn push_lines<'a>(&mut self, lines: impl IntoIterator<Item = &'a str>) {
        for line in lines {
            self.push_line(line);
        }
    }

    /// Parses all lines of a text blob.
    ///
    /// Line splitting matches [`crate::logical_lines`]: `\n`-separated
    /// with one trailing `\r` stripped per line, *including* a final
    /// line that lacks its terminating newline. (`str::lines` would
    /// leave the stray `\r` on such a line, so a CRLF log whose last
    /// line was cut mid-ending used to render a message body ending in
    /// a carriage return — and to disagree with the chunked streaming
    /// path, which always stripped it.)
    pub fn push_text(&mut self, text: &str) {
        self.push_lines(crate::logical_lines(text));
    }

    /// Parses an entire byte stream incrementally, reading it in
    /// bounded whole-line chunks (see [`crate::LineChunker`]) instead
    /// of materializing the text first. Line accounting matches
    /// [`Self::push_text`] on the same bytes exactly.
    ///
    /// # Errors
    ///
    /// Returns the first I/O error from the underlying reader; lines
    /// parsed before the error are kept.
    pub fn push_reader(&mut self, reader: impl std::io::Read) -> std::io::Result<()> {
        for chunk in crate::LineChunker::new(reader) {
            self.push_text(&chunk?);
        }
        Ok(())
    }

    /// The messages parsed so far.
    pub fn messages(&self) -> &[Message] {
        &self.messages
    }

    /// Takes the messages parsed since the last take, leaving the
    /// context and statistics intact — the streaming pipeline drains
    /// per chunk so the reader never holds the whole log.
    pub fn take_messages(&mut self) -> Vec<Message> {
        std::mem::take(&mut self.messages)
    }

    /// Parse statistics so far.
    pub fn stats(&self) -> &ParseStats {
        &self.stats
    }

    /// Consumes the reader, returning messages, the parse context (with
    /// its interner), and statistics.
    pub fn into_parts(self) -> (Vec<Message>, ParseContext, ParseStats) {
        (self.messages, self.ctx, self.stats)
    }

    /// Access to the interner for resolving message sources.
    pub fn context(&self) -> &ParseContext {
        &self.ctx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{BglFormat, SyslogFormat};

    #[test]
    fn reader_accumulates_and_counts() {
        let mut r = LogReader::new(SystemId::Spirit, Box::new(SyslogFormat::plain()), 2005);
        r.push_text(
            "Jan  1 00:00:01 sn373 kernel: cciss: cmd has CHECK CONDITION\n\
             \n\
             Jan  1 00:00:02 sn373 kernel: cciss: cmd has CHECK CONDITION\n\
             ???\n",
        );
        assert_eq!(r.stats().parsed, 2);
        assert_eq!(r.stats().empty, 1);
        assert_eq!(r.stats().rejected(), 1);
        assert_eq!(r.stats().total(), 4);
        assert_eq!(r.messages().len(), 2);
        let (msgs, ctx, stats) = r.into_parts();
        assert_eq!(msgs.len(), 2);
        assert_eq!(ctx.interner.len(), 1);
        assert_eq!(stats.parsed, 2);
    }

    #[test]
    fn for_system_uses_native_format() {
        let mut r = LogReader::for_system(SystemId::BlueGeneL);
        assert!(r
            .push_line("2005-06-03-15.42.50.363779 R02 RAS KERNEL INFO cache parity error")
            .is_some());
        assert!(r.push_line("Jun  3 15:42:50 R02 kernel: x").is_none());

        let mut r = LogReader::for_system(SystemId::Liberty);
        assert!(r.push_line("Dec 12 00:00:01 ln1 kernel: x").is_some());
    }

    #[test]
    fn bgl_reader_keeps_micro_order() {
        let mut r = LogReader::new(SystemId::BlueGeneL, Box::new(BglFormat), 2005);
        r.push_line("2005-06-03-15.42.50.000002 R00 RAS KERNEL INFO a");
        r.push_line("2005-06-03-15.42.50.000001 R01 RAS KERNEL INFO b");
        assert_eq!(r.messages()[0].time.subsec_micros(), 2);
        assert_eq!(r.messages()[1].time.subsec_micros(), 1);
    }

    #[test]
    fn debug_is_nonempty() {
        let r = LogReader::for_system(SystemId::Liberty);
        assert!(format!("{r:?}").contains("Liberty"));
    }

    #[test]
    fn push_reader_matches_push_text() {
        let text = "Jan  1 00:00:01 sn373 kernel: cciss: cmd has CHECK CONDITION\n\
                    \n\
                    ???\n\
                    Jan  1 00:00:02 sn374 kernel: ok\n";
        let mut batch = LogReader::new(SystemId::Spirit, Box::new(SyslogFormat::plain()), 2005);
        batch.push_text(text);
        let mut stream = LogReader::new(SystemId::Spirit, Box::new(SyslogFormat::plain()), 2005);
        stream.push_reader(text.as_bytes()).unwrap();
        assert_eq!(stream.messages(), batch.messages());
        assert_eq!(stream.stats(), batch.stats());
    }

    #[test]
    fn push_reader_matches_push_text_on_trailing_edge_cases() {
        // ISSUE-6 regression matrix: a final line without `\n`, CRLF
        // endings (including a final line cut after its `\r`), and
        // inputs ending exactly on a chunk boundary must parse
        // identically chunked and whole, at every chunk target.
        let texts = [
            "Jan  1 00:00:01 sn373 kernel: no final newline",
            "Jan  1 00:00:01 sn373 kernel: a\r\nJan  1 00:00:02 sn374 kernel: b\r\n",
            "Jan  1 00:00:01 sn373 kernel: a\r\nJan  1 00:00:02 sn374 kernel: cut\r",
            "Jan  1 00:00:01 sn373 kernel: boundary\n",
            "\r\n\r\nJan  1 00:00:03 sn375 kernel: after blanks\r",
        ];
        for text in texts {
            let mut whole = LogReader::new(SystemId::Spirit, Box::new(SyslogFormat::plain()), 2005);
            whole.push_text(text);
            for target in [1, 4, text.len().max(1), 64 * 1024] {
                let mut chunked =
                    LogReader::new(SystemId::Spirit, Box::new(SyslogFormat::plain()), 2005);
                for chunk in crate::LineChunker::with_target(text.as_bytes(), target) {
                    chunked.push_text(&chunk.unwrap());
                }
                assert_eq!(chunked.messages(), whole.messages(), "{text:?} t={target}");
                assert_eq!(chunked.stats(), whole.stats(), "{text:?} t={target}");
            }
            for msg in whole.messages() {
                assert!(
                    !msg.body.contains('\r') && !msg.facility.contains('\r'),
                    "stray carriage return rendered into {msg:?}"
                );
            }
        }
    }

    #[test]
    fn push_reader_surfaces_io_errors() {
        struct Failing;
        impl std::io::Read for Failing {
            fn read(&mut self, _: &mut [u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("gone"))
            }
        }
        let mut r = LogReader::for_system(SystemId::Liberty);
        assert!(r.push_reader(Failing).is_err());
    }

    #[test]
    fn take_messages_drains_but_keeps_context() {
        let mut r = LogReader::for_system(SystemId::Liberty);
        r.push_line("Dec 12 00:00:01 ln1 kernel: a");
        let first = r.take_messages();
        assert_eq!(first.len(), 1);
        assert!(r.messages().is_empty());
        r.push_line("Dec 12 00:00:02 ln1 kernel: b");
        assert_eq!(r.messages().len(), 1);
        assert_eq!(r.stats().parsed, 2, "stats survive the take");
        assert_eq!(r.context().interner.len(), 1, "interner survives the take");
    }
}
