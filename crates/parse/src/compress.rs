//! A small LZSS compressor for log-compressibility estimates.
//!
//! Table 2 of the paper reports gzip-compressed sizes — log
//! compressibility is itself a signal (Liberty's logs compress 36×;
//! Thunderbird's only 4.8×, partly because of its corrupted-message
//! diversity). Pulling in a full DEFLATE implementation is outside the
//! approved dependency set, so this module implements a classic LZSS
//! (32 KiB window, hash-chain match finding, greedy parsing) with a
//! fixed-width token encoding. Ratios are lower than gzip's (no
//! entropy coding stage) but strongly correlated, which is all the
//! Table 2 column needs.
//!
//! The encoder and decoder round-trip exactly; `compressed_size` is the
//! encoder's output length without materializing it.

const WINDOW: usize = 32 * 1024;
const MIN_MATCH: usize = 4;
const MAX_MATCH: usize = 258;
const HASH_BITS: usize = 15;
const MAX_CHAIN: usize = 32;

/// One LZSS token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Token {
    /// A literal byte.
    Literal(u8),
    /// A back-reference: `(distance, length)` with `1 <= distance <=
    /// 32768` and `4 <= length <= 258`.
    Match {
        /// Bytes back from the current position.
        distance: u16,
        /// Match length.
        length: u16,
    },
}

fn hash4(data: &[u8]) -> usize {
    let v = u32::from_le_bytes([data[0], data[1], data[2], data[3]]);
    (v.wrapping_mul(2654435761) >> (32 - HASH_BITS)) as usize
}

/// Tokenizes `data` with greedy LZSS parsing.
pub fn tokenize(data: &[u8]) -> Vec<Token> {
    let mut tokens = Vec::new();
    let mut head = vec![usize::MAX; 1 << HASH_BITS];
    let mut prev = vec![usize::MAX; data.len()];
    let mut i = 0;
    while i < data.len() {
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        if i + MIN_MATCH <= data.len() {
            let h = hash4(&data[i..]);
            let mut cand = head[h];
            let mut chain = 0;
            while cand != usize::MAX && chain < MAX_CHAIN {
                if i - cand <= WINDOW {
                    let limit = (data.len() - i).min(MAX_MATCH);
                    let mut l = 0;
                    while l < limit && data[cand + l] == data[i + l] {
                        l += 1;
                    }
                    if l > best_len {
                        best_len = l;
                        best_dist = i - cand;
                        if l == limit {
                            break;
                        }
                    }
                } else {
                    break; // chains are position-ordered; older is farther
                }
                cand = prev[cand];
                chain += 1;
            }
            // Insert current position into the chain.
            prev[i] = head[h];
            head[h] = i;
        }
        if best_len >= MIN_MATCH {
            tokens.push(Token::Match {
                distance: best_dist as u16,
                length: best_len as u16,
            });
            // Insert the skipped positions so later matches can
            // reference them (sparse insertion keeps this O(n)).
            let end = i + best_len;
            let mut j = i + 1;
            while j < end && j + MIN_MATCH <= data.len() {
                let h = hash4(&data[j..]);
                prev[j] = head[h];
                head[h] = j;
                j += 1;
            }
            i = end;
        } else {
            tokens.push(Token::Literal(data[i]));
            i += 1;
        }
    }
    tokens
}

/// Reconstructs the original bytes from tokens.
///
/// # Panics
///
/// Panics on malformed tokens (distance reaching before the start).
pub fn detokenize(tokens: &[Token]) -> Vec<u8> {
    let mut out = Vec::new();
    for &t in tokens {
        match t {
            Token::Literal(b) => out.push(b),
            Token::Match { distance, length } => {
                let d = distance as usize;
                assert!(d >= 1 && d <= out.len(), "bad distance");
                let start = out.len() - d;
                for k in 0..length as usize {
                    let b = out[start + k];
                    out.push(b);
                }
            }
        }
    }
    out
}

/// Size in bytes of the fixed-width encoding: 1 flag bit per token,
/// plus 8 bits for a literal or 15 + 9 bits for a match.
pub fn encoded_size(tokens: &[Token]) -> usize {
    let bits: usize = tokens
        .iter()
        .map(|t| match t {
            Token::Literal(_) => 1 + 8,
            Token::Match { .. } => 1 + 15 + 9,
        })
        .sum();
    bits.div_ceil(8)
}

/// Estimated compressed size of a text, in bytes.
///
/// # Examples
///
/// ```
/// use sclog_parse::compress::compressed_size;
///
/// let repetitive = "kernel: EXT3-fs error\n".repeat(1000);
/// let ratio = repetitive.len() as f64 / compressed_size(repetitive.as_bytes()) as f64;
/// assert!(ratio > 10.0);
/// ```
pub fn compressed_size(data: &[u8]) -> usize {
    encoded_size(&tokenize(data))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_exactly() {
        let cases: Vec<Vec<u8>> = vec![
            b"".to_vec(),
            b"a".to_vec(),
            b"abcabcabcabcabcabc".to_vec(),
            b"Jan  1 00:00:01 sn373 kernel: cciss: cmd has CHECK CONDITION\n".repeat(50),
            (0..=255u8).collect(),
            b"aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa".to_vec(),
        ];
        for data in cases {
            let tokens = tokenize(&data);
            assert_eq!(detokenize(&tokens), data);
        }
    }

    #[test]
    fn repetitive_text_compresses_well() {
        let line = "Mar 19 12:00:01 nid00042 CRIT ddn: DMT_HINT Warning: bus parity error\n";
        let text = line.repeat(2000);
        let size = compressed_size(text.as_bytes());
        let ratio = text.len() as f64 / size as f64;
        assert!(ratio > 15.0, "ratio {ratio}");
    }

    #[test]
    fn random_bytes_do_not_compress() {
        // Pseudo-random bytes: ratio near (and slightly below) 1.
        let mut x = 0x12345678u32;
        let data: Vec<u8> = (0..20_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                (x & 0xff) as u8
            })
            .collect();
        let size = compressed_size(&data);
        let ratio = data.len() as f64 / size as f64;
        assert!((0.7..1.1).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn overlapping_match_semantics() {
        // "aaaa..." uses matches with distance 1 < length: the copy
        // loop must read bytes it has just written.
        let data = vec![b'x'; 500];
        let tokens = tokenize(&data);
        assert!(tokens.len() < 10);
        assert_eq!(detokenize(&tokens), data);
    }

    #[test]
    fn long_inputs_use_window_only() {
        // Repetition farther apart than the window cannot be matched.
        let mut data = b"unique-prefix-0123456789".to_vec();
        data.extend(std::iter::repeat_n(b'_', WINDOW + 100));
        data.extend(b"unique-prefix-0123456789");
        let tokens = tokenize(&data);
        assert_eq!(detokenize(&tokens), data);
    }

    #[test]
    fn encoded_size_counts_bits() {
        assert_eq!(encoded_size(&[Token::Literal(b'a')]), 2); // 9 bits
        assert_eq!(
            encoded_size(&[Token::Match {
                distance: 1,
                length: 10
            }]),
            4 // 25 bits
        );
        assert_eq!(encoded_size(&[]), 0);
    }
}
