//! Parse errors.

use std::fmt;

/// Why a log line could not be parsed into a [`sclog_types::Message`].
///
/// Corruption tolerance means most damage still parses; these errors
/// cover the cases where the line is beyond recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The line is empty or whitespace-only.
    EmptyLine,
    /// The timestamp could not be recovered.
    BadTimestamp {
        /// The token(s) that failed to parse as a timestamp.
        token: String,
    },
    /// The line has too few fields to contain a message at all.
    TooShort {
        /// Number of fields found.
        found: usize,
        /// Minimum number of fields the format requires.
        needed: usize,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::EmptyLine => f.write_str("empty log line"),
            ParseError::BadTimestamp { token } => {
                write!(f, "unrecoverable timestamp: {token:?}")
            }
            ParseError::TooShort { found, needed } => {
                write!(f, "line has {found} fields, format needs at least {needed}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(ParseError::EmptyLine.to_string(), "empty log line");
        assert!(ParseError::BadTimestamp {
            token: "Xyz 99".into()
        }
        .to_string()
        .contains("Xyz 99"));
        assert!(ParseError::TooShort {
            found: 2,
            needed: 5
        }
        .to_string()
        .contains("2 fields"));
    }
}
