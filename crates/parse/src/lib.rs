//! Log-format renderers and corruption-tolerant parsers.
//!
//! Section 3.2.1 of the paper lists *inconsistent structure* and
//! *corruption* among the obstacles to automated log analysis: "BG/L and
//! Red Storm use custom databases and formats, and commodity
//! syslog-based systems do not even record fields such as severity by
//! default", and "we saw messages truncated, partially overwritten, and
//! incorrectly timestamped".
//!
//! This crate defines the three concrete line formats the reproduction
//! uses, one per logging path in Section 3.1:
//!
//! * [`SyslogFormat`] — classic BSD syslog (`Nov  9 12:01:01 host
//!   facility: body`), as collected by `syslog-ng` on Liberty, Spirit
//!   and Thunderbird. Optionally records a severity token, as Red
//!   Storm's syslog path does. Note the missing year — parsers must
//!   recover it from context, including rollover at New Year.
//! * [`BglFormat`] — the BG/L RAS database export
//!   (`2005-06-03-15.42.50.363779 R02-M1-N0-C:J12-U11 RAS KERNEL INFO
//!   body`), microsecond-granular with an explicit severity.
//! * [`EventFormat`] — Red Storm's RAS-network event path
//!   (`EV 1142800000 c3-0c1s4n2 ec_heartbeat_stop body`).
//!
//! Parsing is *corruption-tolerant*: a garbled source or severity token
//! still yields a [`Message`] (with the garbled source interned as-is,
//! reproducing Figure 2b's unattributable tail), and only a line whose
//! timestamp cannot be recovered is rejected.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chunker;
pub mod compress;
mod error;
mod format;
mod reader;
pub mod swar;

pub use chunker::{LineChunker, DEFAULT_CHUNK_BYTES};
pub use error::ParseError;
pub use format::{BglFormat, EventFormat, LineFormat, ParseContext, RedStormFormat, SyslogFormat};
pub use reader::{LogReader, ParseStats};

use sclog_types::{Message, SourceInterner, SystemId};

/// The native line format for a system's primary log path.
///
/// Red Storm gets the mixed format ([`RedStormFormat`]) covering both
/// its syslog and RAS-event logging paths.
pub fn format_for(system: SystemId) -> Box<dyn LineFormat> {
    match system {
        SystemId::BlueGeneL => Box::new(BglFormat),
        SystemId::RedStorm => Box::new(RedStormFormat),
        _ => Box::new(SyslogFormat::plain()),
    }
}

/// Renders a message in its system's native line form, picking the
/// Red Storm sub-format (syslog vs RAS event) by the facility: `ec_*`
/// facilities ride the TCP event path.
pub fn render_native(msg: &Message, interner: &SourceInterner) -> String {
    let mut out = String::new();
    render_native_into(msg, interner, &mut out);
    out
}

/// Renders a message in its system's native line form into a
/// caller-owned buffer, clearing it first.
///
/// This is the reuse path of [`render_native`]: the tagging loop calls
/// it once per message with one long-lived `String`, so rendering
/// 178 million lines performs no per-line buffer allocation.
pub fn render_native_into(msg: &Message, interner: &SourceInterner, out: &mut String) {
    out.clear();
    match msg.system {
        SystemId::BlueGeneL => BglFormat.render_into(msg, interner, out),
        SystemId::RedStorm if msg.facility.starts_with("ec_") => {
            EventFormat.render_into(msg, interner, out)
        }
        SystemId::RedStorm => SyslogFormat::with_severity().render_into(msg, interner, out),
        _ => SyslogFormat::plain().render_into(msg, interner, out),
    }
}

/// Splits raw log text into logical lines the way the whole pipeline
/// agrees to: `\n`-separated, one trailing `\r` stripped per line
/// (CRLF tolerance), and no phantom empty line after a final `\n`.
///
/// This differs from [`str::lines`] in exactly one case — a final line
/// with a `\r` but no terminating `\n` (a CRLF log cut mid-ending)
/// also has its `\r` stripped, so batch parsing, chunked parsing and
/// raw-line tagging all see the same line text no matter where a read
/// boundary fell.
///
/// # Examples
///
/// ```
/// use sclog_parse::logical_lines;
///
/// let lines: Vec<&str> = logical_lines("a\r\n\nb\r").collect();
/// assert_eq!(lines, vec!["a", "", "b"], "no stray carriage returns");
/// assert_eq!(logical_lines("").count(), 0);
/// ```
pub fn logical_lines(text: &str) -> impl Iterator<Item = &str> {
    let mut pieces = text.split('\n').peekable();
    std::iter::from_fn(move || {
        let piece = pieces.next()?;
        if piece.is_empty() && pieces.peek().is_none() {
            return None; // artifact of a terminating newline
        }
        Some(piece.strip_suffix('\r').unwrap_or(piece))
    })
}

/// Splits a line into awk-style whitespace-separated fields.
///
/// Field numbering in the expert rules is 1-based (`$1` is the first
/// field, `$0` the whole line); this returns the fields so that
/// `fields[0]` is awk's `$1`. Splitting goes through [`field_spans`],
/// so ASCII lines (virtually every log line) take the SWAR fast path.
///
/// # Examples
///
/// ```
/// use sclog_parse::fields;
///
/// let f = fields("a  b\tc");
/// assert_eq!(f, vec!["a", "b", "c"]);
/// ```
pub fn fields(line: &str) -> Vec<&str> {
    let mut spans = Vec::new();
    field_spans(line, &mut spans);
    spans.iter().map(|&(s, e)| &line[s..e]).collect()
}

/// Computes the byte spans of a line's awk-style fields into a
/// caller-owned buffer, clearing it first.
///
/// Each `(start, end)` pair indexes `line` so that
/// `&line[start..end]` is the field; `out[0]` spans awk's `$1`. This
/// is the reuse path of [`fields`]: spans carry no lifetime tied to
/// the line, so one `Vec` can serve every line of a log.
///
/// ASCII lines are classified a `u64` lane at a time with
/// [`swar::ascii_whitespace_mask`]; anything else falls back to
/// [`field_spans_scalar`], which both implementations must agree with
/// (and `split_whitespace`, the original definition — ASCII
/// whitespace under `char::is_whitespace` is space plus
/// `0x09..=0x0D`).
///
/// # Examples
///
/// ```
/// use sclog_parse::field_spans;
///
/// let line = "a  b\tc";
/// let mut spans = Vec::new();
/// field_spans(line, &mut spans);
/// let got: Vec<&str> = spans.iter().map(|&(s, e)| &line[s..e]).collect();
/// assert_eq!(got, vec!["a", "b", "c"]);
/// ```
pub fn field_spans(line: &str, out: &mut Vec<(usize, usize)>) {
    if line.is_ascii() {
        field_spans_ascii(line.as_bytes(), out);
    } else {
        field_spans_scalar(line, out);
    }
}

/// The char-at-a-time reference implementation of [`field_spans`].
///
/// Handles the full Unicode whitespace set, so it is both the
/// non-ASCII fallback and the oracle the property suite compares the
/// SWAR path against.
pub fn field_spans_scalar(line: &str, out: &mut Vec<(usize, usize)>) {
    out.clear();
    let mut start = None;
    for (i, c) in line.char_indices() {
        if c.is_whitespace() {
            if let Some(s) = start.take() {
                out.push((s, i));
            }
        } else if start.is_none() {
            start = Some(i);
        }
    }
    if let Some(s) = start {
        out.push((s, line.len()));
    }
}

/// SWAR fast path of [`field_spans`]: every byte of `bytes` is ASCII.
///
/// Uniform lanes — all whitespace (the gap between fields) or all
/// field bytes (the middle of a long message body) — advance eight
/// bytes with no per-byte work; only lanes containing a boundary walk
/// their mask bytes.
fn field_spans_ascii(bytes: &[u8], out: &mut Vec<(usize, usize)>) {
    use swar::{ascii_whitespace_mask, SWAR_LANE};

    out.clear();
    let mut start: Option<usize> = None;
    let mut i = 0;
    while let Some(lane) = bytes.get(i..i + SWAR_LANE) {
        let w = u64::from_le_bytes(lane.try_into().expect("8-byte slice"));
        let ws = ascii_whitespace_mask(w);
        if ws == 0 {
            // Entirely field bytes: extend (or open) the current field.
            if start.is_none() {
                start = Some(i);
            }
        } else if ws == swar::HI {
            // Entirely whitespace: close the current field, if any.
            if let Some(s) = start.take() {
                out.push((s, i));
            }
        } else {
            for (j, &m) in ws.to_le_bytes().iter().enumerate() {
                if m != 0 {
                    if let Some(s) = start.take() {
                        out.push((s, i + j));
                    }
                } else if start.is_none() {
                    start = Some(i + j);
                }
            }
        }
        i += SWAR_LANE;
    }
    for (j, &b) in bytes[i..].iter().enumerate() {
        if b == 0x20 || (0x09..=0x0D).contains(&b) {
            if let Some(s) = start.take() {
                out.push((s, i + j));
            }
        } else if start.is_none() {
            start = Some(i + j);
        }
    }
    if let Some(s) = start {
        out.push((s, bytes.len()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fields_collapse_whitespace() {
        assert_eq!(fields("  x   y  "), vec!["x", "y"]);
        assert!(fields("").is_empty());
        assert!(fields("   ").is_empty());
    }

    #[test]
    fn field_spans_agree_with_split_whitespace() {
        let mut spans = Vec::new();
        let mut scalar = Vec::new();
        for line in [
            "  x   y  ",
            "",
            "   ",
            "a\tb c",
            "naïve  plan",
            // Vertical tab and form feed separate under
            // char::is_whitespace (unlike u8::is_ascii_whitespace's
            // notion for VT) — the SWAR classifier must agree.
            "a\x0bb\x0cc\rd",
            "one-lane-spanning-token another_long_token  \t trailing",
        ] {
            field_spans(line, &mut spans);
            field_spans_scalar(line, &mut scalar);
            assert_eq!(spans, scalar, "SWAR vs scalar on {line:?}");
            let via_spans: Vec<&str> = spans.iter().map(|&(s, e)| &line[s..e]).collect();
            let oracle: Vec<&str> = line.split_whitespace().collect();
            assert_eq!(via_spans, oracle, "{line:?}");
            assert_eq!(fields(line), oracle, "{line:?}");
        }
    }

    #[test]
    fn render_native_into_reuses_and_clears() {
        use sclog_types::{Message, Severity, Timestamp};
        let mut interner = SourceInterner::new();
        let source = interner.intern("ln1");
        let msg = Message::new(
            SystemId::Liberty,
            Timestamp::from_ymd_hms(2005, 3, 7, 14, 30, 5),
            source,
            "pbs_mom",
            Severity::None,
            "task_check, cannot tm_reply to 1 task 1",
        );
        let mut buf = String::from("stale contents");
        render_native_into(&msg, &interner, &mut buf);
        assert_eq!(buf, render_native(&msg, &interner));
    }

    #[test]
    fn format_for_matches_paths() {
        // Spot checks; behaviour is covered in format tests.
        let _ = format_for(SystemId::BlueGeneL);
        let _ = format_for(SystemId::Liberty);
        let _ = format_for(SystemId::RedStorm);
    }
}
