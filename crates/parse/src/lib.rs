//! Log-format renderers and corruption-tolerant parsers.
//!
//! Section 3.2.1 of the paper lists *inconsistent structure* and
//! *corruption* among the obstacles to automated log analysis: "BG/L and
//! Red Storm use custom databases and formats, and commodity
//! syslog-based systems do not even record fields such as severity by
//! default", and "we saw messages truncated, partially overwritten, and
//! incorrectly timestamped".
//!
//! This crate defines the three concrete line formats the reproduction
//! uses, one per logging path in Section 3.1:
//!
//! * [`SyslogFormat`] — classic BSD syslog (`Nov  9 12:01:01 host
//!   facility: body`), as collected by `syslog-ng` on Liberty, Spirit
//!   and Thunderbird. Optionally records a severity token, as Red
//!   Storm's syslog path does. Note the missing year — parsers must
//!   recover it from context, including rollover at New Year.
//! * [`BglFormat`] — the BG/L RAS database export
//!   (`2005-06-03-15.42.50.363779 R02-M1-N0-C:J12-U11 RAS KERNEL INFO
//!   body`), microsecond-granular with an explicit severity.
//! * [`EventFormat`] — Red Storm's RAS-network event path
//!   (`EV 1142800000 c3-0c1s4n2 ec_heartbeat_stop body`).
//!
//! Parsing is *corruption-tolerant*: a garbled source or severity token
//! still yields a [`Message`] (with the garbled source interned as-is,
//! reproducing Figure 2b's unattributable tail), and only a line whose
//! timestamp cannot be recovered is rejected.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compress;
mod error;
mod format;
mod reader;

pub use error::ParseError;
pub use format::{BglFormat, EventFormat, LineFormat, ParseContext, RedStormFormat, SyslogFormat};
pub use reader::{LogReader, ParseStats};

use sclog_types::{Message, SourceInterner, SystemId};

/// The native line format for a system's primary log path.
///
/// Red Storm gets the mixed format ([`RedStormFormat`]) covering both
/// its syslog and RAS-event logging paths.
pub fn format_for(system: SystemId) -> Box<dyn LineFormat> {
    match system {
        SystemId::BlueGeneL => Box::new(BglFormat),
        SystemId::RedStorm => Box::new(RedStormFormat),
        _ => Box::new(SyslogFormat::plain()),
    }
}

/// Renders a message in its system's native line form, picking the
/// Red Storm sub-format (syslog vs RAS event) by the facility: `ec_*`
/// facilities ride the TCP event path.
pub fn render_native(msg: &Message, interner: &SourceInterner) -> String {
    match msg.system {
        SystemId::BlueGeneL => BglFormat.render(msg, interner),
        SystemId::RedStorm if msg.facility.starts_with("ec_") => EventFormat.render(msg, interner),
        SystemId::RedStorm => SyslogFormat::with_severity().render(msg, interner),
        _ => SyslogFormat::plain().render(msg, interner),
    }
}

/// Splits a line into awk-style whitespace-separated fields.
///
/// Field numbering in the expert rules is 1-based (`$1` is the first
/// field, `$0` the whole line); this returns the fields so that
/// `fields[0]` is awk's `$1`.
///
/// # Examples
///
/// ```
/// use sclog_parse::fields;
///
/// let f = fields("a  b\tc");
/// assert_eq!(f, vec!["a", "b", "c"]);
/// ```
pub fn fields(line: &str) -> Vec<&str> {
    line.split_whitespace().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fields_collapse_whitespace() {
        assert_eq!(fields("  x   y  "), vec!["x", "y"]);
        assert!(fields("").is_empty());
        assert!(fields("   ").is_empty());
    }

    #[test]
    fn format_for_matches_paths() {
        // Spot checks; behaviour is covered in format tests.
        let _ = format_for(SystemId::BlueGeneL);
        let _ = format_for(SystemId::Liberty);
        let _ = format_for(SystemId::RedStorm);
    }
}
