//! Incremental line-oriented reading of raw log text.
//!
//! The streaming pipeline consumes logs from an `io::Read` in bounded
//! chunks instead of slurping 178 million lines into one `String`.
//! [`LineChunker`] cuts the byte stream into text blocks of roughly a
//! target size, always on line boundaries, so a downstream parser can
//! treat each block exactly like a small [`str::lines`] blob.

use crate::swar;
use std::io::Read;

/// Default chunk target: big enough to amortize read and dispatch
/// overhead, small enough that a handful of in-flight chunks stay
/// cache-resident.
pub const DEFAULT_CHUNK_BYTES: usize = 64 * 1024;

/// Iterator cutting an `io::Read` into whole-line text chunks.
///
/// Each yielded `String` contains complete lines only (a partial line
/// at a read boundary is carried into the next chunk); the final chunk
/// may lack a trailing newline if the input does. Bytes that are not
/// valid UTF-8 are replaced (`U+FFFD`), mirroring how a lossy log
/// collector would salvage corrupted entries.
///
/// # Examples
///
/// ```
/// use sclog_parse::LineChunker;
///
/// let text = "alpha\nbeta\ngamma\n";
/// let chunks: Vec<String> = LineChunker::with_target(text.as_bytes(), 8)
///     .collect::<std::io::Result<_>>()
///     .unwrap();
/// assert!(chunks.len() > 1, "small target splits the stream");
/// assert_eq!(chunks.concat(), text, "nothing lost, nothing reordered");
/// for chunk in &chunks[..chunks.len() - 1] {
///     assert!(chunk.ends_with('\n'), "chunks break on line boundaries");
/// }
/// ```
pub struct LineChunker<R: Read> {
    reader: R,
    target: usize,
    /// Bytes read but not yet emitted: a partial trailing line plus
    /// whatever the last `read` returned beyond it.
    carry: Vec<u8>,
    done: bool,
    /// Full 8-byte SWAR lanes examined by the newline scan; exported
    /// to the `chunker.swar_blocks` observability counter.
    swar_blocks: u64,
}

impl<R: Read> LineChunker<R> {
    /// Creates a chunker with the default target size.
    pub fn new(reader: R) -> Self {
        LineChunker::with_target(reader, DEFAULT_CHUNK_BYTES)
    }

    /// Creates a chunker cutting chunks of roughly `target_bytes`
    /// (chunks may exceed it by one line).
    ///
    /// # Panics
    ///
    /// Panics if `target_bytes` is zero.
    pub fn with_target(reader: R, target_bytes: usize) -> Self {
        assert!(target_bytes > 0, "chunk target must be positive");
        LineChunker {
            reader,
            target: target_bytes,
            carry: Vec::new(),
            done: false,
            swar_blocks: 0,
        }
    }

    /// Number of full 8-byte SWAR lanes the newline scan has examined
    /// so far (see [`crate::swar`]); monotone over the chunker's life.
    pub fn swar_blocks(&self) -> u64 {
        self.swar_blocks
    }

    /// Reads until the buffer holds at least one full line past the
    /// target size or the input ends. Returns the split point: one past
    /// the last newline within the filled region (or the whole buffer
    /// at end of input).
    ///
    /// Once end of input has been observed (`done`), the underlying
    /// reader is never touched again — a socket-like reader must not be
    /// asked to read past EOF, where it could block or error — and
    /// `ErrorKind::Interrupted` reads are retried per `std::io`
    /// convention instead of killing the stream.
    fn fill(&mut self) -> std::io::Result<usize> {
        const READ_SIZE: usize = 16 * 1024;
        loop {
            if self.carry.len() >= self.target {
                // Split after the first newline at or past the target,
                // so chunk size exceeds the target by at most one line.
                // A single line longer than the target keeps reading
                // until its newline (or EOF) arrives.
                let from = self.target - 1;
                if let Some(pos) =
                    swar::find_newline_counted(&self.carry[from..], &mut self.swar_blocks)
                {
                    return Ok(from + pos + 1);
                }
            }
            if self.done {
                return Ok(self.carry.len());
            }
            // Read straight into the buffer's tail: no bounce copy.
            let old = self.carry.len();
            self.carry.resize(old + READ_SIZE, 0);
            let n = match self.reader.read(&mut self.carry[old..]) {
                Ok(n) => n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {
                    self.carry.truncate(old);
                    continue;
                }
                Err(e) => {
                    self.carry.truncate(old);
                    return Err(e);
                }
            };
            self.carry.truncate(old + n);
            if n == 0 {
                self.done = true;
                return Ok(self.carry.len());
            }
        }
    }
}

impl<R: Read> Iterator for LineChunker<R> {
    type Item = std::io::Result<String>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done && self.carry.is_empty() {
            return None;
        }
        let split = match self.fill() {
            Ok(split) => split,
            Err(e) => {
                self.done = true;
                self.carry.clear();
                return Some(Err(e));
            }
        };
        if split == 0 {
            return None;
        }
        let rest = self.carry.split_off(split);
        let block = std::mem::replace(&mut self.carry, rest);
        // Zero-copy for valid UTF-8; replacement characters otherwise.
        Some(Ok(match String::from_utf8(block) {
            Ok(text) => text,
            Err(e) => String::from_utf8_lossy(e.as_bytes()).into_owned(),
        }))
    }
}

impl<R: Read> std::fmt::Debug for LineChunker<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LineChunker")
            .field("target", &self.target)
            .field("carried", &self.carry.len())
            .field("done", &self.done)
            .field("swar_blocks", &self.swar_blocks)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rechunk(text: &str, target: usize) -> Vec<String> {
        LineChunker::with_target(text.as_bytes(), target)
            .collect::<std::io::Result<_>>()
            .unwrap()
    }

    #[test]
    fn concatenation_is_identity() {
        let text = "one\ntwo\nthree\nfour with more text\nfive\n";
        for target in [1, 4, 7, 16, 1024] {
            assert_eq!(rechunk(text, target).concat(), text, "target {target}");
        }
    }

    #[test]
    fn chunks_end_on_line_boundaries() {
        let text = "aaaa\nbbbb\ncccc\ndddd\n";
        let chunks = rechunk(text, 6);
        assert!(chunks.len() >= 2);
        for c in &chunks {
            assert!(c.ends_with('\n'));
        }
    }

    #[test]
    fn trailing_partial_line_is_emitted() {
        let chunks = rechunk("complete\npartial-no-newline", 4);
        assert_eq!(chunks.concat(), "complete\npartial-no-newline");
        assert!(chunks.last().unwrap().ends_with("partial-no-newline"));
    }

    #[test]
    fn line_longer_than_target_stays_whole() {
        let long = format!("{}\nshort\n", "x".repeat(100));
        let chunks = rechunk(&long, 8);
        assert_eq!(chunks.concat(), long);
        assert!(
            chunks[0].len() > 100,
            "oversized line is not split mid-line"
        );
    }

    #[test]
    fn empty_input_yields_nothing() {
        assert!(rechunk("", 8).is_empty());
    }

    #[test]
    fn invalid_utf8_is_replaced_not_fatal() {
        let bytes: &[u8] = b"good line\nbad \xff byte\n";
        let chunks: Vec<String> = LineChunker::with_target(bytes, 1024)
            .collect::<std::io::Result<_>>()
            .unwrap();
        assert_eq!(chunks.len(), 1);
        assert!(chunks[0].contains('\u{FFFD}'));
    }

    #[test]
    fn read_error_is_propagated() {
        struct Failing;
        impl Read for Failing {
            fn read(&mut self, _: &mut [u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk on fire"))
            }
        }
        let mut chunker = LineChunker::new(Failing);
        assert!(chunker.next().unwrap().is_err());
        assert!(chunker.next().is_none(), "error ends the stream");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_target_rejected() {
        let _ = LineChunker::with_target(&b""[..], 0);
    }

    /// Yields the wrapped bytes `step` bytes per read, and panics if
    /// read again after reporting end of input — the way a socket-like
    /// reader must never be driven.
    struct Strict<'a> {
        data: &'a [u8],
        pos: usize,
        step: usize,
        eof_seen: bool,
    }

    impl<'a> Strict<'a> {
        fn new(data: &'a [u8], step: usize) -> Self {
            Strict {
                data,
                pos: 0,
                step,
                eof_seen: false,
            }
        }
    }

    impl Read for Strict<'_> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            assert!(!self.eof_seen, "read past EOF");
            let n = self.step.min(buf.len()).min(self.data.len() - self.pos);
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            if n == 0 {
                self.eof_seen = true;
            }
            Ok(n)
        }
    }

    #[test]
    fn trailing_edge_cases_are_identity_for_all_boundaries() {
        // The three ISSUE-6 trailing-line edge cases: a final line with
        // no `\n`, CRLF endings (with and without the final `\n`), and
        // inputs whose length lands exactly on a read/target boundary.
        let texts = [
            "no newline at all",
            "one\ntwo\nthree", // unterminated final line
            "a\r\nb\r\nc\r\n", // CRLF, terminated
            "a\r\nb\r\nc\r",   // CRLF cut mid-ending
            "exact\n",         // length 6: hits step/target boundaries below
            "ab\ncd\nef\n",    // length 9, multiple of 3
            "\n\n\n",          // only newlines
            "x\n\ny\r\n\r\nz", // blanks interleaved, CRLF and not
        ];
        for text in texts {
            for target in [1, 2, 3, 6, 9, 1024] {
                for step in [1, 2, 3, 7, 16 * 1024] {
                    let chunks: Vec<String> =
                        LineChunker::with_target(Strict::new(text.as_bytes(), step), target)
                            .collect::<std::io::Result<_>>()
                            .unwrap();
                    assert_eq!(
                        chunks.concat(),
                        text,
                        "identity broken: {text:?} target={target} step={step}"
                    );
                    assert!(
                        chunks.iter().all(|c| !c.is_empty()),
                        "empty chunk emitted: {text:?} target={target} step={step}"
                    );
                }
            }
        }
    }

    #[test]
    fn no_read_after_eof_when_input_ends_on_a_boundary() {
        // "exact\n" is 6 bytes; with target 6 the split lands exactly
        // on the end of the input. The Strict reader panics if the
        // chunker comes back for more after seeing EOF.
        let text = b"exact\n";
        let mut chunker = LineChunker::with_target(Strict::new(text, 6), 6);
        assert_eq!(chunker.next().unwrap().unwrap(), "exact\n");
        assert!(chunker.next().is_none(), "no empty final chunk");
        assert!(chunker.next().is_none(), "end of stream is sticky");
    }

    #[test]
    fn interrupted_reads_are_retried() {
        struct Flaky {
            data: &'static [u8],
            pos: usize,
            hiccup: bool,
        }
        impl Read for Flaky {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                self.hiccup = !self.hiccup;
                if self.hiccup {
                    return Err(std::io::Error::from(std::io::ErrorKind::Interrupted));
                }
                let n = 1.min(self.data.len() - self.pos);
                buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
                self.pos += n;
                Ok(n)
            }
        }
        let chunks: Vec<String> = LineChunker::with_target(
            Flaky {
                data: b"a\nbb\nccc",
                pos: 0,
                hiccup: false,
            },
            4,
        )
        .collect::<std::io::Result<_>>()
        .unwrap();
        assert_eq!(chunks.concat(), "a\nbb\nccc");
    }

    #[test]
    fn swar_blocks_counts_lanes_examined() {
        let text = "x".repeat(100) + "\n" + &"y".repeat(50) + "\n";
        let mut chunker = LineChunker::with_target(text.as_bytes(), 16);
        assert_eq!(chunker.swar_blocks(), 0, "no scan before the first read");
        let chunks: Vec<String> = (&mut chunker).collect::<std::io::Result<_>>().unwrap();
        assert_eq!(chunks.concat(), text);
        assert!(
            chunker.swar_blocks() > 0,
            "long lines past the target drive the SWAR scan"
        );
    }

    #[test]
    fn debug_is_nonempty() {
        let c = LineChunker::new(&b"x\n"[..]);
        assert!(format!("{c:?}").contains("target"));
    }
}
