//! Incremental line-oriented reading of raw log text.
//!
//! The streaming pipeline consumes logs from an `io::Read` in bounded
//! chunks instead of slurping 178 million lines into one `String`.
//! [`LineChunker`] cuts the byte stream into text blocks of roughly a
//! target size, always on line boundaries, so a downstream parser can
//! treat each block exactly like a small [`str::lines`] blob.

use std::io::Read;

/// Default chunk target: big enough to amortize read and dispatch
/// overhead, small enough that a handful of in-flight chunks stay
/// cache-resident.
pub const DEFAULT_CHUNK_BYTES: usize = 64 * 1024;

/// Iterator cutting an `io::Read` into whole-line text chunks.
///
/// Each yielded `String` contains complete lines only (a partial line
/// at a read boundary is carried into the next chunk); the final chunk
/// may lack a trailing newline if the input does. Bytes that are not
/// valid UTF-8 are replaced (`U+FFFD`), mirroring how a lossy log
/// collector would salvage corrupted entries.
///
/// # Examples
///
/// ```
/// use sclog_parse::LineChunker;
///
/// let text = "alpha\nbeta\ngamma\n";
/// let chunks: Vec<String> = LineChunker::with_target(text.as_bytes(), 8)
///     .collect::<std::io::Result<_>>()
///     .unwrap();
/// assert!(chunks.len() > 1, "small target splits the stream");
/// assert_eq!(chunks.concat(), text, "nothing lost, nothing reordered");
/// for chunk in &chunks[..chunks.len() - 1] {
///     assert!(chunk.ends_with('\n'), "chunks break on line boundaries");
/// }
/// ```
pub struct LineChunker<R: Read> {
    reader: R,
    target: usize,
    /// Bytes read but not yet emitted: a partial trailing line plus
    /// whatever the last `read` returned beyond it.
    carry: Vec<u8>,
    done: bool,
}

impl<R: Read> LineChunker<R> {
    /// Creates a chunker with the default target size.
    pub fn new(reader: R) -> Self {
        LineChunker::with_target(reader, DEFAULT_CHUNK_BYTES)
    }

    /// Creates a chunker cutting chunks of roughly `target_bytes`
    /// (chunks may exceed it by one line).
    ///
    /// # Panics
    ///
    /// Panics if `target_bytes` is zero.
    pub fn with_target(reader: R, target_bytes: usize) -> Self {
        assert!(target_bytes > 0, "chunk target must be positive");
        LineChunker {
            reader,
            target: target_bytes,
            carry: Vec::new(),
            done: false,
        }
    }

    /// Reads until the buffer holds at least one full line past the
    /// target size or the input ends. Returns the split point: one past
    /// the last newline within the filled region (or the whole buffer
    /// at end of input).
    fn fill(&mut self) -> std::io::Result<usize> {
        const READ_SIZE: usize = 16 * 1024;
        loop {
            if self.carry.len() >= self.target {
                // Split after the first newline at or past the target,
                // so chunk size exceeds the target by at most one line.
                // A single line longer than the target keeps reading
                // until its newline (or EOF) arrives.
                let from = self.target - 1;
                if let Some(pos) = self.carry[from..].iter().position(|&b| b == b'\n') {
                    return Ok(from + pos + 1);
                }
            }
            // Read straight into the buffer's tail: no bounce copy.
            let old = self.carry.len();
            self.carry.resize(old + READ_SIZE, 0);
            let n = self.reader.read(&mut self.carry[old..])?;
            self.carry.truncate(old + n);
            if n == 0 {
                self.done = true;
                return Ok(self.carry.len());
            }
        }
    }
}

impl<R: Read> Iterator for LineChunker<R> {
    type Item = std::io::Result<String>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done && self.carry.is_empty() {
            return None;
        }
        let split = match self.fill() {
            Ok(split) => split,
            Err(e) => {
                self.done = true;
                self.carry.clear();
                return Some(Err(e));
            }
        };
        if split == 0 {
            return None;
        }
        let rest = self.carry.split_off(split);
        let block = std::mem::replace(&mut self.carry, rest);
        // Zero-copy for valid UTF-8; replacement characters otherwise.
        Some(Ok(match String::from_utf8(block) {
            Ok(text) => text,
            Err(e) => String::from_utf8_lossy(e.as_bytes()).into_owned(),
        }))
    }
}

impl<R: Read> std::fmt::Debug for LineChunker<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LineChunker")
            .field("target", &self.target)
            .field("carried", &self.carry.len())
            .field("done", &self.done)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rechunk(text: &str, target: usize) -> Vec<String> {
        LineChunker::with_target(text.as_bytes(), target)
            .collect::<std::io::Result<_>>()
            .unwrap()
    }

    #[test]
    fn concatenation_is_identity() {
        let text = "one\ntwo\nthree\nfour with more text\nfive\n";
        for target in [1, 4, 7, 16, 1024] {
            assert_eq!(rechunk(text, target).concat(), text, "target {target}");
        }
    }

    #[test]
    fn chunks_end_on_line_boundaries() {
        let text = "aaaa\nbbbb\ncccc\ndddd\n";
        let chunks = rechunk(text, 6);
        assert!(chunks.len() >= 2);
        for c in &chunks {
            assert!(c.ends_with('\n'));
        }
    }

    #[test]
    fn trailing_partial_line_is_emitted() {
        let chunks = rechunk("complete\npartial-no-newline", 4);
        assert_eq!(chunks.concat(), "complete\npartial-no-newline");
        assert!(chunks.last().unwrap().ends_with("partial-no-newline"));
    }

    #[test]
    fn line_longer_than_target_stays_whole() {
        let long = format!("{}\nshort\n", "x".repeat(100));
        let chunks = rechunk(&long, 8);
        assert_eq!(chunks.concat(), long);
        assert!(
            chunks[0].len() > 100,
            "oversized line is not split mid-line"
        );
    }

    #[test]
    fn empty_input_yields_nothing() {
        assert!(rechunk("", 8).is_empty());
    }

    #[test]
    fn invalid_utf8_is_replaced_not_fatal() {
        let bytes: &[u8] = b"good line\nbad \xff byte\n";
        let chunks: Vec<String> = LineChunker::with_target(bytes, 1024)
            .collect::<std::io::Result<_>>()
            .unwrap();
        assert_eq!(chunks.len(), 1);
        assert!(chunks[0].contains('\u{FFFD}'));
    }

    #[test]
    fn read_error_is_propagated() {
        struct Failing;
        impl Read for Failing {
            fn read(&mut self, _: &mut [u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk on fire"))
            }
        }
        let mut chunker = LineChunker::new(Failing);
        assert!(chunker.next().unwrap().is_err());
        assert!(chunker.next().is_none(), "error ends the stream");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_target_rejected() {
        let _ = LineChunker::with_target(&b""[..], 0);
    }

    #[test]
    fn debug_is_nonempty() {
        let c = LineChunker::new(&b"x\n"[..]);
        assert!(format!("{c:?}").contains("target"));
    }
}
