//! Property tests: parsers never panic, and render/parse round-trips.
//!
//! Ported from proptest to the in-tree `sclog-testkit` harness; set
//! `SCLOG_PROP_CASES` / `SCLOG_PROP_SEED` to rescale or replay.

use sclog_parse::{BglFormat, EventFormat, LineFormat, ParseContext, SyslogFormat};
use sclog_testkit::{check, Gen};
use sclog_types::{
    BglSeverity, Duration, Message, NodeId, Severity, SourceInterner, SystemId, Timestamp,
};

/// Printable ASCII bodies without newlines, including colons and
/// brackets like real messages.
fn body(g: &mut Gen) -> String {
    g.ascii_printable(0..=120)
}

/// Arbitrary line content, tabs included.
fn any_line(g: &mut Gen) -> String {
    g.ascii_line(0..=200)
}

#[test]
fn syslog_parser_never_panics() {
    check("syslog parser never panics", |g| {
        let line = any_line(g);
        let mut ctx = ParseContext::new(2005);
        let _ = SyslogFormat::plain().parse(&line, SystemId::Spirit, &mut ctx);
        let _ = SyslogFormat::with_severity().parse(&line, SystemId::RedStorm, &mut ctx);
    });
}

#[test]
fn bgl_parser_never_panics() {
    check("bgl parser never panics", |g| {
        let line = any_line(g);
        let mut ctx = ParseContext::new(2005);
        let _ = BglFormat.parse(&line, SystemId::BlueGeneL, &mut ctx);
    });
}

#[test]
fn event_parser_never_panics() {
    check("event parser never panics", |g| {
        let line = any_line(g);
        let mut ctx = ParseContext::new(2006);
        let _ = EventFormat.parse(&line, SystemId::RedStorm, &mut ctx);
    });
}

#[test]
fn syslog_round_trips() {
    check("syslog round-trips", |g| {
        let secs = g.int_in(1_104_537_600..=1_149_999_999); // 2005-01-01 .. mid-2006
        let sev_idx = g.usize_in(0..=7);
        // Body must not begin with something that parses as a facility
        // token; normalize whitespace the way syslog does.
        let body = body(g).split_whitespace().collect::<Vec<_>>().join(" ");
        let mut interner = SourceInterner::new();
        let source = NodeId::from_index(0);
        interner.intern("dn101");
        let msg = Message {
            system: SystemId::RedStorm,
            time: Timestamp::from_secs(secs),
            source,
            facility: "kernel".into(),
            severity: Severity::Syslog(sclog_types::severity::ALL_SYSLOG_SEVERITIES[sev_idx]),
            body,
        };
        let f = SyslogFormat::with_severity();
        let line = f.render(&msg, &interner);
        let mut ctx = ParseContext::new(msg.time.to_civil().0);
        let parsed = f.parse(&line, SystemId::RedStorm, &mut ctx).unwrap();
        assert_eq!(parsed.time, msg.time);
        assert_eq!(parsed.severity, msg.severity);
        assert_eq!(&parsed.facility, "kernel");
        assert_eq!(parsed.body, msg.body);
    });
}

#[test]
fn bgl_round_trips() {
    check("bgl round-trips", |g| {
        let secs = g.int_in(1_117_756_800..=1_139_999_999);
        let micros = g.int_in(0..=999_999);
        let sev_idx = g.usize_in(0..=5);
        let body = body(g).split_whitespace().collect::<Vec<_>>().join(" ");
        let mut interner = SourceInterner::new();
        interner.intern("R02-M1-N0-C:J12-U11");
        let msg = Message {
            system: SystemId::BlueGeneL,
            time: Timestamp::from_secs(secs) + Duration::from_micros(micros),
            source: NodeId::from_index(0),
            facility: "KERNEL".into(),
            severity: Severity::Bgl(sclog_types::severity::ALL_BGL_SEVERITIES[sev_idx]),
            body,
        };
        let line = BglFormat.render(&msg, &interner);
        let mut ctx = ParseContext::new(2005);
        let parsed = BglFormat
            .parse(&line, SystemId::BlueGeneL, &mut ctx)
            .unwrap();
        assert_eq!(parsed.time, msg.time);
        assert_eq!(parsed.severity, msg.severity);
        assert_eq!(parsed.body, msg.body);
    });
}

#[test]
fn truncation_never_panics_on_valid_prefixes() {
    // Simulate the paper's truncated-message corruption on a real
    // line: every prefix must either parse or be cleanly rejected.
    let line = "Nov  9 12:01:01 tbird-admin1 kernel: VIPKL(1): [create_mr] MM_bld_hh_mr failed (-253:VAPI_EAGAIN)";
    for cut in 0..=line.len() {
        let mut ctx = ParseContext::new(2005);
        let _ = SyslogFormat::plain().parse(&line[..cut], SystemId::Thunderbird, &mut ctx);
    }
}

#[test]
fn bgl_severity_round_trip_table() {
    // Deterministic check of the severity mapping used by Table 5.
    let mut interner = SourceInterner::new();
    interner.intern("R00");
    for sev in [
        BglSeverity::Fatal,
        BglSeverity::Failure,
        BglSeverity::Severe,
        BglSeverity::Error,
        BglSeverity::Warning,
        BglSeverity::Info,
    ] {
        let msg = Message {
            system: SystemId::BlueGeneL,
            time: Timestamp::from_ymd_hms(2005, 6, 3, 0, 0, 0),
            source: NodeId::from_index(0),
            facility: "KERNEL".into(),
            severity: Severity::Bgl(sev),
            body: "x".into(),
        };
        let line = BglFormat.render(&msg, &interner);
        let mut ctx = ParseContext::new(2005);
        let parsed = BglFormat
            .parse(&line, SystemId::BlueGeneL, &mut ctx)
            .unwrap();
        assert_eq!(parsed.severity, Severity::Bgl(sev));
    }
}

#[test]
fn syslog_severity_round_trip_table() {
    let mut interner = SourceInterner::new();
    interner.intern("nid0");
    for sev in sclog_types::severity::ALL_SYSLOG_SEVERITIES {
        let msg = Message {
            system: SystemId::RedStorm,
            time: Timestamp::from_ymd_hms(2006, 3, 19, 0, 0, 0),
            source: NodeId::from_index(0),
            facility: "kernel".into(),
            severity: Severity::Syslog(sev),
            body: "x".into(),
        };
        let f = SyslogFormat::with_severity();
        let line = f.render(&msg, &interner);
        let mut ctx = ParseContext::new(2006);
        let parsed = f.parse(&line, SystemId::RedStorm, &mut ctx).unwrap();
        assert_eq!(parsed.severity, Severity::Syslog(sev));
    }
}
