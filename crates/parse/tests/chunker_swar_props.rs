//! SWAR newline-scan properties: the `u64`-at-a-time scanner must be
//! indistinguishable from the byte-at-a-time scalar on *any* byte
//! soup, and the chunker built on it must keep the PR-6 trailing-line
//! guarantees at every read/target boundary.

use sclog_parse::swar::{find_newline_counted, find_newline_scalar};
use sclog_parse::LineChunker;
use sclog_testkit::{check, Gen};
use std::io::Read;

/// Adversarial byte soup: biased toward the bytes that break SWAR
/// tricks — newlines, NULs, CRs, 0x80/0xFF high bytes (which are also
/// invalid UTF-8 on their own) — plus plain printable filler, at
/// lengths straddling the 8-byte lane boundary.
fn byte_soup(g: &mut Gen) -> Vec<u8> {
    let len = g.usize_in(0..=64);
    (0..len)
        .map(|_| match g.below(8) {
            0 => b'\n',
            1 => 0x00,
            2 => b'\r',
            3 => 0x80,
            4 => 0xFF,
            5 => 0x0A ^ 0x80, // 0x8A: newline plus high bit, the classic SWAR false positive
            _ => g.int_in(0x20..=0x7E) as u8,
        })
        .collect()
}

#[test]
fn swar_agrees_with_scalar_on_byte_soup() {
    check("swar newline scan == scalar scan", |g| {
        let hay = byte_soup(g);
        let mut lanes = 0u64;
        assert_eq!(
            find_newline_counted(&hay, &mut lanes),
            find_newline_scalar(&hay),
            "haystack {hay:?}"
        );
        // The lane count can never exceed the full lanes available.
        assert!(lanes <= (hay.len() / 8) as u64, "haystack {hay:?}");
    });
}

#[test]
fn swar_agrees_with_scalar_at_every_offset() {
    // Sliding a window over one buffer exercises every alignment of
    // the newline relative to the 8-byte lanes.
    let mut buf = vec![b'x'; 40];
    for nl in 0..buf.len() {
        buf[nl] = b'\n';
        for start in 0..=buf.len() {
            let hay = &buf[start..];
            let mut lanes = 0u64;
            assert_eq!(
                find_newline_counted(hay, &mut lanes),
                find_newline_scalar(hay),
                "nl={nl} start={start}"
            );
        }
        buf[nl] = b'x';
    }
}

/// Yields `step` bytes per read and panics if read again after end of
/// input — the discipline a socket-like reader demands (same shape as
/// the unit-test `Strict` reader; duplicated here because integration
/// tests cannot see `#[cfg(test)]` helpers).
struct Strict<'a> {
    data: &'a [u8],
    pos: usize,
    step: usize,
    eof_seen: bool,
}

impl Read for Strict<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        assert!(!self.eof_seen, "read past EOF");
        let n = self.step.min(buf.len()).min(self.data.len() - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        if n == 0 {
            self.eof_seen = true;
        }
        Ok(n)
    }
}

fn rechunk(data: &[u8], target: usize, step: usize) -> Vec<String> {
    LineChunker::with_target(
        Strict {
            data,
            pos: 0,
            step,
            eof_seen: false,
        },
        target,
    )
    .collect::<std::io::Result<_>>()
    .expect("in-memory reads cannot fail")
}

#[test]
fn chunker_is_identity_on_byte_soup() {
    // Concatenated chunks must equal the lossy decoding of the whole
    // input. Comparing post-decode is sound because chunk cuts land
    // just after `\n` (0x0A), a byte that can never appear inside a
    // multi-byte UTF-8 sequence — so decoding per-chunk or whole-input
    // replaces exactly the same bytes.
    check("chunker concat == whole-input lossy decode", |g| {
        let data = byte_soup(g);
        let target = g.usize_in(1..=24);
        let step = g.usize_in(1..=16);
        let chunks = rechunk(&data, target, step);
        assert_eq!(
            chunks.concat(),
            String::from_utf8_lossy(&data),
            "data {data:?} target={target} step={step}"
        );
        assert!(
            chunks.iter().all(|c| !c.is_empty()),
            "empty chunk emitted: data {data:?} target={target} step={step}"
        );
        for c in &chunks[..chunks.len().saturating_sub(1)] {
            assert!(
                c.ends_with('\n'),
                "non-final chunk cut mid-line: data {data:?} target={target} step={step}"
            );
        }
    });
}

#[test]
fn trailing_line_regression_survives_the_fast_path() {
    // PR-6 regression pinned to the SWAR rewrite: a final line with no
    // newline (including one cut right after its `\r`) must come out
    // whole, and the reader must never be driven past EOF, at every
    // boundary combination.
    let texts: [&[u8]; 6] = [
        b"no newline at all",
        b"one\ntwo\nthree",
        b"a\r\nb\r\nc\r",
        b"exact\n",
        b"seven-b\x00ytes\xFF\n tail",
        b"\n\n\n",
    ];
    for text in texts {
        for target in [1, 2, 7, 8, 9, 16, 1024] {
            for step in [1, 3, 8, 16 * 1024] {
                let chunks = rechunk(text, target, step);
                assert_eq!(
                    chunks.concat(),
                    String::from_utf8_lossy(text),
                    "{text:?} target={target} step={step}"
                );
            }
        }
    }
}
