//! Field-splitter properties: the SWAR ASCII fast path, the scalar
//! reference, and `str::split_whitespace` (the original definition)
//! must agree on *any* line — whitespace runs, lane-straddling
//! tokens, and the Unicode inputs that force the fallback.

use sclog_parse::{field_spans, field_spans_scalar, fields};
use sclog_testkit::{check, Gen};

/// A line biased toward splitter edge cases: long whitespace runs and
/// long tokens (so uniform SWAR lanes occur), every ASCII whitespace
/// byte including the 0x0B/0x0C oddballs, boundary bytes adjacent to
/// the whitespace range (0x08, 0x0E), and occasional non-ASCII chars —
/// some of them Unicode whitespace — to exercise the scalar fallback.
fn gen_line(g: &mut Gen) -> String {
    let pieces = g.usize_in(0..=12);
    let mut line = String::new();
    for _ in 0..pieces {
        match g.below(6) {
            0 => {
                // A whitespace run.
                for _ in 0..g.usize_in(1..=10) {
                    line.push(*g.pick(&[' ', '\t', '\n', '\x0b', '\x0c', '\r']));
                }
            }
            1 => {
                // A token long enough to span whole lanes.
                for _ in 0..g.usize_in(1..=20) {
                    line.push((b'!' + g.below(94) as u8) as char);
                }
            }
            2 => line.push(*g.pick(&['\x08', '\x0e', '\x1f', '\x7f'])),
            3 if g.chance(0.5) => {
                // Non-ASCII: field chars and Unicode whitespace
                // (NBSP, ideographic space) alike.
                line.push(*g.pick(&['é', '汉', '\u{a0}', '\u{3000}', '\u{2028}']));
            }
            _ => line.push((b' ' + g.below(95) as u8) as char),
        }
    }
    line
}

#[test]
fn swar_scalar_and_split_whitespace_agree() {
    check("field_spans == scalar == split_whitespace", |g| {
        let line = gen_line(g);
        let mut spans = Vec::new();
        let mut scalar = Vec::new();
        field_spans(&line, &mut spans);
        field_spans_scalar(&line, &mut scalar);
        assert_eq!(spans, scalar, "SWAR vs scalar on {line:?}");
        let via_spans: Vec<&str> = spans.iter().map(|&(s, e)| &line[s..e]).collect();
        let oracle: Vec<&str> = line.split_whitespace().collect();
        assert_eq!(via_spans, oracle, "spans vs split_whitespace on {line:?}");
        assert_eq!(fields(&line), oracle, "fields on {line:?}");
    });
}

#[test]
fn every_alignment_of_a_single_separator() {
    // Slide one space through a 24-byte token so the field boundary
    // lands at every offset within the 8-byte lanes, including the
    // scalar tail.
    for pos in 0..24 {
        let mut bytes = vec![b'x'; 24];
        bytes[pos] = b' ';
        let line = String::from_utf8(bytes).unwrap();
        let mut spans = Vec::new();
        field_spans(&line, &mut spans);
        let via_spans: Vec<&str> = spans.iter().map(|&(s, e)| &line[s..e]).collect();
        let oracle: Vec<&str> = line.split_whitespace().collect();
        assert_eq!(via_spans, oracle, "separator at {pos}");
    }
}

#[test]
fn whitespace_set_matches_char_is_whitespace_for_all_ascii() {
    // The SWAR classifier's notion of whitespace (via field_spans on
    // a one-byte line) must match char::is_whitespace for every ASCII
    // byte — including 0x0B, which u8::is_ascii_whitespace excludes.
    let mut spans = Vec::new();
    for b in 0u8..=0x7f {
        let line = String::from_utf8(vec![b]).unwrap();
        field_spans(&line, &mut spans);
        let is_ws = spans.is_empty();
        assert_eq!(
            is_ws,
            (b as char).is_whitespace(),
            "byte {b:#04x} classified wrong"
        );
    }
}
