//! The event scheduler: a priority queue ordered by simulated time.

use sclog_types::{Duration, Timestamp};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A pending event: ordered by time, then by insertion sequence so that
/// same-time events pop in FIFO order (determinism matters more here
/// than in a general simulator — the log generator's output must be
/// bit-stable across runs).
#[derive(Debug)]
struct Scheduled<E> {
    at: Timestamp,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Deterministic discrete-event scheduler.
///
/// Events of type `E` are scheduled at absolute or relative simulated
/// times and popped in time order; ties pop in scheduling order. Popping
/// advances the simulation clock, which never runs backwards.
///
/// # Examples
///
/// ```
/// use sclog_desim::Scheduler;
/// use sclog_types::{Duration, Timestamp};
///
/// let mut s = Scheduler::new(Timestamp::from_secs(100));
/// s.schedule(Timestamp::from_secs(101), 'a');
/// s.schedule(Timestamp::from_secs(101), 'b'); // same time: FIFO
/// assert_eq!(s.next_event(), Some((Timestamp::from_secs(101), 'a')));
/// assert_eq!(s.now(), Timestamp::from_secs(101));
/// assert_eq!(s.next_event(), Some((Timestamp::from_secs(101), 'b')));
/// assert_eq!(s.next_event(), None);
/// ```
#[derive(Debug)]
pub struct Scheduler<E> {
    heap: BinaryHeap<Reverse<Scheduled<E>>>,
    now: Timestamp,
    seq: u64,
}

impl<E> Scheduler<E> {
    /// Creates a scheduler with the clock at `start`.
    pub fn new(start: Timestamp) -> Self {
        Scheduler {
            heap: BinaryHeap::new(),
            now: start,
            seq: 0,
        }
    }

    /// The current simulated time: the timestamp of the last event
    /// popped, or the start time if none has been.
    pub fn now(&self) -> Timestamp {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// Scheduling in the past is clamped to `now`: the event fires
    /// immediately on the next pop. (Collection-path jitter can otherwise
    /// produce out-of-order deliveries; clamping models a collector that
    /// stamps arrival time.)
    pub fn schedule(&mut self, at: Timestamp, event: E) {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Scheduled { at, seq, event }));
    }

    /// Schedules `event` at `now() + delay`.
    ///
    /// # Panics
    ///
    /// Panics if `delay` is negative.
    pub fn schedule_after(&mut self, delay: Duration, event: E) {
        assert!(!delay.is_negative(), "negative delay: {delay}");
        self.schedule(self.now + delay, event);
    }

    /// Pops the next event, advancing the clock to its time.
    pub fn next_event(&mut self) -> Option<(Timestamp, E)> {
        let Reverse(s) = self.heap.pop()?;
        debug_assert!(s.at >= self.now, "scheduler clock ran backwards");
        self.now = s.at;
        Some((s.at, s.event))
    }

    /// The time of the next pending event without popping it.
    pub fn peek_time(&self) -> Option<Timestamp> {
        self.heap.peek().map(|Reverse(s)| s.at)
    }

    /// Pops the next event only if it is at or before `deadline`.
    pub fn next_event_before(&mut self, deadline: Timestamp) -> Option<(Timestamp, E)> {
        match self.peek_time() {
            Some(t) if t <= deadline => self.next_event(),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut s = Scheduler::new(Timestamp::EPOCH);
        s.schedule(Timestamp::from_secs(3), 3);
        s.schedule(Timestamp::from_secs(1), 1);
        s.schedule(Timestamp::from_secs(2), 2);
        let order: Vec<_> = std::iter::from_fn(|| s.next_event())
            .map(|(_, e)| e)
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_are_fifo() {
        let mut s = Scheduler::new(Timestamp::EPOCH);
        for i in 0..100 {
            s.schedule(Timestamp::from_secs(7), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| s.next_event())
            .map(|(_, e)| e)
            .collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn past_events_clamp_to_now() {
        let mut s = Scheduler::new(Timestamp::from_secs(50));
        s.schedule(Timestamp::from_secs(10), 'x');
        let (t, _) = s.next_event().unwrap();
        assert_eq!(t, Timestamp::from_secs(50));
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut s = Scheduler::new(Timestamp::EPOCH);
        s.schedule(Timestamp::from_secs(5), ());
        s.schedule(Timestamp::from_secs(9), ());
        let mut last = s.now();
        while let Some((t, ())) = s.next_event() {
            assert!(t >= last);
            last = t;
        }
        assert_eq!(s.now(), Timestamp::from_secs(9));
    }

    #[test]
    fn next_event_before_respects_deadline() {
        let mut s = Scheduler::new(Timestamp::EPOCH);
        s.schedule(Timestamp::from_secs(5), 'a');
        s.schedule(Timestamp::from_secs(15), 'b');
        assert_eq!(
            s.next_event_before(Timestamp::from_secs(10)),
            Some((Timestamp::from_secs(5), 'a'))
        );
        assert_eq!(s.next_event_before(Timestamp::from_secs(10)), None);
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
    }

    #[test]
    fn schedule_after_uses_clock() {
        let mut s = Scheduler::new(Timestamp::from_secs(100));
        s.schedule_after(Duration::from_secs(5), 'a');
        let (t, _) = s.next_event().unwrap();
        assert_eq!(t, Timestamp::from_secs(105));
        s.schedule_after(Duration::from_secs(5), 'b');
        let (t, _) = s.next_event().unwrap();
        assert_eq!(t, Timestamp::from_secs(110));
    }

    #[test]
    #[should_panic(expected = "negative delay")]
    fn negative_delay_panics() {
        let mut s = Scheduler::new(Timestamp::EPOCH);
        s.schedule_after(Duration::from_secs(-1), ());
    }
}
