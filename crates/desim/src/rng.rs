//! Reproducible random-number streams and distribution samplers.
//!
//! The generator runs many logical processes (one per failure category
//! per system, plus background traffic per node group). Each gets its own
//! [`RngStream`] derived from the master seed and a label, so adding or
//! reordering processes never perturbs the samples other processes draw
//! — a property the calibration tests depend on.

/// Derives a child seed from a master seed and a label.
///
/// Uses SplitMix64 over the master seed and an FNV-1a hash of the label,
/// which is enough mixing for statistically independent
/// [`Xoshiro256pp`] streams.
///
/// # Examples
///
/// ```
/// use sclog_desim::derive_seed;
///
/// assert_eq!(derive_seed(42, "ecc"), derive_seed(42, "ecc"));
/// assert_ne!(derive_seed(42, "ecc"), derive_seed(42, "vapi"));
/// assert_ne!(derive_seed(42, "ecc"), derive_seed(43, "ecc"));
/// ```
pub fn derive_seed(master: u64, label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    splitmix64(master ^ h)
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The xoshiro256++ generator (Blackman & Vigna), implemented in-tree
/// so the workspace stays std-only.
///
/// 256 bits of state, period 2^256 − 1, and excellent statistical
/// quality for simulation workloads. Seeded from a single `u64` by a
/// SplitMix64 chain, as the reference implementation recommends.
#[derive(Debug, Clone)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Seeds the generator from a single word via SplitMix64.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut z = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
            *slot = splitmix64(z);
        }
        // All-zero state is the one forbidden point; SplitMix64 cannot
        // produce four zeros from one seed chain, but guard anyway.
        if s == [0; 4] {
            s[0] = 0x9e37_79b9_7f4a_7c15;
        }
        Xoshiro256pp { s }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// A deterministic random stream with the distribution samplers the log
/// generator needs.
///
/// Wraps the in-tree [`Xoshiro256pp`]; the distribution samplers are
/// implemented here (inverse transform / Box–Muller), so the whole
/// random stack is dependency-free and byte-stable across platforms.
#[derive(Debug, Clone)]
pub struct RngStream {
    rng: Xoshiro256pp,
    /// Cached second normal variate from Box–Muller.
    spare_normal: Option<f64>,
}

impl RngStream {
    /// Creates a stream from a raw seed.
    pub fn from_seed(seed: u64) -> Self {
        RngStream {
            rng: Xoshiro256pp::seed_from_u64(seed),
            spare_normal: None,
        }
    }

    /// Creates a stream from a master seed and a label via
    /// [`derive_seed`].
    pub fn derived(master: u64, label: &str) -> Self {
        Self::from_seed(derive_seed(master, label))
    }

    /// Uniform in `[0, 1)`: the top 53 bits of one output word.
    pub fn uniform(&mut self) -> f64 {
        (self.rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `(0, 1]` — safe to take logarithms of.
    pub fn uniform_open(&mut self) -> f64 {
        1.0 - self.uniform()
    }

    /// Uniform integer in `[0, n)` (Lemire's debiased multiply method).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        let mut m = u128::from(self.rng.next_u64()) * u128::from(n);
        let mut lo = m as u64;
        if lo < n {
            let threshold = n.wrapping_neg() % n;
            while lo < threshold {
                m = u128::from(self.rng.next_u64()) * u128::from(n);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn int_in(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        let span = hi.wrapping_sub(lo) as u64;
        if span == u64::MAX {
            return self.rng.next_u64() as i64;
        }
        lo.wrapping_add(self.below(span + 1) as i64)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.uniform() < p
        }
    }

    /// Standard normal variate (Box–Muller, with spare caching).
    pub fn normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        let u1 = self.uniform_open();
        let u2 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = std::f64::consts::TAU * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Exponential variate with rate `lambda` (mean `1/lambda`).
    ///
    /// # Panics
    ///
    /// Panics if `lambda <= 0`.
    pub fn exponential(&mut self, lambda: f64) -> f64 {
        assert!(lambda > 0.0, "exponential rate must be positive");
        -self.uniform_open().ln() / lambda
    }

    /// Log-normal variate with location `mu` and scale `sigma` (of the
    /// underlying normal).
    ///
    /// # Panics
    ///
    /// Panics if `sigma < 0`.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        assert!(sigma >= 0.0, "lognormal sigma must be non-negative");
        (mu + sigma * self.normal()).exp()
    }

    /// Weibull variate with shape `k` and scale `lambda`.
    ///
    /// # Panics
    ///
    /// Panics if `k <= 0` or `lambda <= 0`.
    pub fn weibull(&mut self, k: f64, lambda: f64) -> f64 {
        assert!(
            k > 0.0 && lambda > 0.0,
            "weibull parameters must be positive"
        );
        lambda * (-self.uniform_open().ln()).powf(1.0 / k)
    }

    /// Pareto variate with minimum `xm` and shape `alpha`.
    ///
    /// # Panics
    ///
    /// Panics if `xm <= 0` or `alpha <= 0`.
    pub fn pareto(&mut self, xm: f64, alpha: f64) -> f64 {
        assert!(
            xm > 0.0 && alpha > 0.0,
            "pareto parameters must be positive"
        );
        xm / self.uniform_open().powf(1.0 / alpha)
    }

    /// Geometric variate: number of Bernoulli(`p`) failures before the
    /// first success, in `0..`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `(0, 1]`.
    pub fn geometric(&mut self, p: f64) -> u64 {
        assert!(p > 0.0 && p <= 1.0, "geometric p must be in (0,1]");
        if p >= 1.0 {
            return 0;
        }
        let u = self.uniform_open();
        (u.ln() / (1.0 - p).ln()).floor() as u64
    }

    /// Poisson variate with mean `lambda` (Knuth for small means, normal
    /// approximation above 64).
    ///
    /// # Panics
    ///
    /// Panics if `lambda < 0`.
    pub fn poisson(&mut self, lambda: f64) -> u64 {
        assert!(lambda >= 0.0, "poisson mean must be non-negative");
        if lambda == 0.0 {
            return 0;
        }
        if lambda > 64.0 {
            let v = lambda + lambda.sqrt() * self.normal();
            return v.max(0.0).round() as u64;
        }
        let limit = (-lambda).exp();
        let mut prod = self.uniform();
        let mut n = 0;
        while prod > limit {
            prod *= self.uniform();
            n += 1;
        }
        n
    }

    /// Samples an index from a slice of non-negative weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        assert!(!weights.is_empty(), "weighted_index on empty weights");
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must sum to a positive value");
        let mut x = self.uniform() * total;
        for (i, &w) in weights.iter().enumerate() {
            x -= w;
            if x < 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }

    /// Raw access to the underlying generator.
    pub fn inner_mut(&mut self) -> &mut Xoshiro256pp {
        &mut self.rng
    }
}

/// A named, boxed sampler of positive durations (seconds), used to plug
/// interchangeable interarrival models into renewal processes.
pub struct DistSampler {
    name: &'static str,
    f: Box<dyn FnMut(&mut RngStream) -> f64 + Send>,
}

impl std::fmt::Debug for DistSampler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DistSampler")
            .field("name", &self.name)
            .finish()
    }
}

impl DistSampler {
    /// Wraps a closure as a sampler.
    pub fn new(name: &'static str, f: impl FnMut(&mut RngStream) -> f64 + Send + 'static) -> Self {
        DistSampler {
            name,
            f: Box::new(f),
        }
    }

    /// Exponential interarrivals with the given rate (events/second).
    pub fn exponential(rate: f64) -> Self {
        Self::new("exponential", move |r| r.exponential(rate))
    }

    /// Log-normal interarrivals.
    pub fn lognormal(mu: f64, sigma: f64) -> Self {
        Self::new("lognormal", move |r| r.lognormal(mu, sigma))
    }

    /// Weibull interarrivals.
    pub fn weibull(k: f64, lambda: f64) -> Self {
        Self::new("weibull", move |r| r.weibull(k, lambda))
    }

    /// Pareto interarrivals.
    pub fn pareto(xm: f64, alpha: f64) -> Self {
        Self::new("pareto", move |r| r.pareto(xm, alpha))
    }

    /// The sampler's name (for reports).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Draws one sample.
    pub fn sample(&mut self, rng: &mut RngStream) -> f64 {
        (self.f)(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_of(n: usize, mut f: impl FnMut() -> f64) -> f64 {
        (0..n).map(|_| f()).sum::<f64>() / n as f64
    }

    #[test]
    fn xoshiro_reference_outputs() {
        // Known-answer test against the reference implementation:
        // with state {1, 2, 3, 4} the first two outputs are fixed.
        let mut g = Xoshiro256pp { s: [1, 2, 3, 4] };
        assert_eq!(g.next_u64(), 41_943_041);
        assert_eq!(g.next_u64(), 58_720_359);
    }

    #[test]
    fn seeding_avoids_degenerate_state() {
        for seed in [0u64, 1, u64::MAX] {
            let mut g = Xoshiro256pp::seed_from_u64(seed);
            assert_ne!(g.s, [0; 4], "seed {seed} produced all-zero state");
            let first = g.next_u64();
            let second = g.next_u64();
            assert_ne!(first, second);
        }
    }

    #[test]
    fn uniform_is_in_half_open_unit_interval() {
        let mut r = RngStream::from_seed(99);
        for _ in 0..10_000 {
            let u = r.uniform();
            assert!((0.0..1.0).contains(&u));
            let v = r.uniform_open();
            assert!(v > 0.0 && v <= 1.0);
        }
    }

    #[test]
    fn streams_are_reproducible() {
        let mut a = RngStream::derived(7, "x");
        let mut b = RngStream::derived(7, "x");
        for _ in 0..100 {
            assert_eq!(a.uniform().to_bits(), b.uniform().to_bits());
        }
    }

    #[test]
    fn different_labels_diverge() {
        let mut a = RngStream::derived(7, "x");
        let mut b = RngStream::derived(7, "y");
        let same = (0..100).filter(|_| a.uniform() == b.uniform()).count();
        assert!(same < 5);
    }

    #[test]
    fn exponential_mean_close() {
        let mut r = RngStream::from_seed(1);
        let m = mean_of(20_000, || r.exponential(2.0));
        assert!((m - 0.5).abs() < 0.02, "mean {m}");
    }

    #[test]
    fn normal_moments_close() {
        let mut r = RngStream::from_seed(2);
        let xs: Vec<f64> = (0..20_000).map(|_| r.normal()).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn lognormal_median_close() {
        let mut r = RngStream::from_seed(3);
        let mut xs: Vec<f64> = (0..10_001).map(|_| r.lognormal(1.0, 0.5)).collect();
        xs.sort_by(f64::total_cmp);
        let median = xs[xs.len() / 2];
        assert!(
            (median - 1f64.exp()).abs() / 1f64.exp() < 0.05,
            "median {median}"
        );
    }

    #[test]
    fn weibull_k1_is_exponential() {
        let mut r = RngStream::from_seed(4);
        let m = mean_of(20_000, || r.weibull(1.0, 3.0));
        assert!((m - 3.0).abs() < 0.1, "mean {m}");
    }

    #[test]
    fn pareto_respects_minimum() {
        let mut r = RngStream::from_seed(5);
        for _ in 0..1000 {
            assert!(r.pareto(2.0, 1.5) >= 2.0);
        }
    }

    #[test]
    fn poisson_mean_close() {
        let mut r = RngStream::from_seed(6);
        let m = mean_of(5000, || r.poisson(3.5) as f64);
        assert!((m - 3.5).abs() < 0.1, "mean {m}");
        let m = mean_of(5000, || r.poisson(200.0) as f64);
        assert!((m - 200.0).abs() < 1.0, "mean {m}");
        assert_eq!(r.poisson(0.0), 0);
    }

    #[test]
    fn geometric_mean_close() {
        let mut r = RngStream::from_seed(7);
        let p: f64 = 0.25;
        let m = mean_of(20_000, || r.geometric(p) as f64);
        let expect = (1.0 - p) / p;
        assert!((m - expect).abs() < 0.1, "mean {m} expect {expect}");
        assert_eq!(r.geometric(1.0), 0);
    }

    #[test]
    fn chance_edges() {
        let mut r = RngStream::from_seed(8);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        let hits = (0..10_000).filter(|_| r.chance(0.3)).count();
        assert!((hits as f64 / 10_000.0 - 0.3).abs() < 0.02);
    }

    #[test]
    fn weighted_index_proportions() {
        let mut r = RngStream::from_seed(9);
        let w = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..8000 {
            counts[r.weighted_index(&w)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.4, "ratio {ratio}");
    }

    #[test]
    fn dist_sampler_dispatch() {
        let mut r = RngStream::from_seed(10);
        let mut s = DistSampler::exponential(1.0);
        assert_eq!(s.name(), "exponential");
        assert!(s.sample(&mut r) > 0.0);
        let mut s = DistSampler::lognormal(0.0, 1.0);
        assert!(s.sample(&mut r) > 0.0);
        let mut s = DistSampler::weibull(2.0, 1.0);
        assert!(s.sample(&mut r) > 0.0);
        let mut s = DistSampler::pareto(1.0, 2.0);
        assert!(s.sample(&mut r) >= 1.0);
    }

    #[test]
    fn below_and_int_in() {
        let mut r = RngStream::from_seed(11);
        for _ in 0..100 {
            assert!(r.below(5) < 5);
            let v = r.int_in(-3, 3);
            assert!((-3..=3).contains(&v));
        }
    }
}
