//! Deterministic discrete-event simulation kernel.
//!
//! `sclog-simgen` replays two years of supercomputer logging activity as
//! a discrete-event simulation: failure processes fire, nodes emit
//! messages, collection paths delay/drop/corrupt them. This crate is the
//! substrate: a deterministic event [`Scheduler`], reproducible
//! [`rng`] streams, and the renewal/burst [`process`] generators the
//! generator composes.
//!
//! Everything is seeded and deterministic: the same seed always produces
//! the same event trace, which the test suite relies on.
//!
//! # Examples
//!
//! ```
//! use sclog_desim::Scheduler;
//! use sclog_types::{Duration, Timestamp};
//!
//! let mut sched = Scheduler::new(Timestamp::EPOCH);
//! sched.schedule_after(Duration::from_secs(10), "world");
//! sched.schedule_after(Duration::from_secs(5), "hello");
//! let mut order = Vec::new();
//! while let Some((t, ev)) = sched.next_event() {
//!     order.push((t.as_secs(), ev));
//! }
//! assert_eq!(order, vec![(5, "hello"), (10, "world")]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod process;
pub mod rng;
mod scheduler;

pub use process::{BurstSpec, MarkovBurstProcess, PoissonProcess, RenewalProcess};
pub use rng::{derive_seed, DistSampler, RngStream, Xoshiro256pp};
pub use scheduler::Scheduler;
