//! Arrival-process generators.
//!
//! These produce the *failure event* streams that drive the log
//! generator: memoryless arrivals for physically driven failures (the
//! paper found ECC alerts "basically independent", Figure 5), general
//! renewal processes for heavy-tailed categories, and a two-state
//! Markov-modulated burst process for episodic pathologies like the
//! Spirit disk storms and the Liberty PBS bug.

use crate::rng::{DistSampler, RngStream};
use sclog_types::{Duration, Timestamp};

/// Homogeneous Poisson process: exponential interarrivals at `rate`
/// events per second.
///
/// # Examples
///
/// ```
/// use sclog_desim::{PoissonProcess, RngStream};
/// use sclog_types::{Duration, Timestamp};
///
/// let mut rng = RngStream::from_seed(1);
/// let start = Timestamp::EPOCH;
/// let end = start + Duration::from_hours(10);
/// let events = PoissonProcess::new(1.0 / 60.0) // one per minute
///     .generate(start, end, &mut rng);
/// assert!(events.iter().all(|&t| t >= start && t < end));
/// // ~600 expected
/// assert!((400..800).contains(&events.len()));
/// ```
#[derive(Debug, Clone)]
pub struct PoissonProcess {
    rate: f64,
}

impl PoissonProcess {
    /// Creates a process with the given rate (events/second).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not positive and finite.
    pub fn new(rate: f64) -> Self {
        assert!(rate > 0.0 && rate.is_finite(), "rate must be positive");
        PoissonProcess { rate }
    }

    /// The process rate in events per second.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Generates all event times in `[start, end)`.
    pub fn generate(
        &self,
        start: Timestamp,
        end: Timestamp,
        rng: &mut RngStream,
    ) -> Vec<Timestamp> {
        let mut out = Vec::new();
        let mut t = start;
        loop {
            t += Duration::from_secs_f64(rng.exponential(self.rate));
            if t >= end {
                return out;
            }
            out.push(t);
        }
    }
}

/// Renewal process with interarrivals drawn from an arbitrary
/// [`DistSampler`].
#[derive(Debug)]
pub struct RenewalProcess {
    sampler: DistSampler,
    /// Interarrivals shorter than this are clamped, preventing a
    /// heavy-left-tail sampler from generating unbounded event counts.
    min_gap: Duration,
}

impl RenewalProcess {
    /// Creates a renewal process from an interarrival sampler.
    pub fn new(sampler: DistSampler) -> Self {
        RenewalProcess {
            sampler,
            min_gap: Duration::from_micros(1),
        }
    }

    /// Sets the minimum interarrival gap (clamp).
    pub fn with_min_gap(mut self, min_gap: Duration) -> Self {
        self.min_gap = min_gap;
        self
    }

    /// Generates all event times in `[start, end)`.
    pub fn generate(
        &mut self,
        start: Timestamp,
        end: Timestamp,
        rng: &mut RngStream,
    ) -> Vec<Timestamp> {
        let mut out = Vec::new();
        let mut t = start;
        loop {
            let gap = Duration::from_secs_f64(self.sampler.sample(rng).max(0.0)).max(self.min_gap);
            t += gap;
            if t >= end {
                return out;
            }
            out.push(t);
        }
    }
}

/// Shape of one burst of redundant alerts caused by a single failure.
///
/// Section 3.3 motivates filtering with bursts: a single PBS bug
/// produced "up to 74" repeats per job on Liberty; a single Thunderbird
/// node emitted 643,925 VAPI alerts; Spirit's `sn373` logged 89M+ disk
/// messages. A `BurstSpec` describes how many redundant messages one
/// failure yields and how they spread over time and nodes.
#[derive(Debug, Clone)]
pub struct BurstSpec {
    /// Mean number of messages per burst (geometric length ≥ 1).
    pub mean_len: f64,
    /// Mean gap between consecutive messages in a burst, seconds.
    pub mean_gap_secs: f64,
    /// Number of distinct nodes the burst spreads over (≥ 1); messages
    /// round-robin across them, reproducing the paper's spatial
    /// redundancy ("k nodes report the same alert in a round-robin
    /// fashion").
    pub spread: u32,
}

impl BurstSpec {
    /// A burst of exactly one message on one node.
    pub fn singleton() -> Self {
        BurstSpec {
            mean_len: 1.0,
            mean_gap_secs: 1.0,
            spread: 1,
        }
    }

    /// Samples the number of messages for one burst (≥ 1).
    pub fn sample_len(&self, rng: &mut RngStream) -> u64 {
        if self.mean_len <= 1.0 {
            return 1;
        }
        // Geometric with mean `mean_len`: success prob 1/mean_len.
        1 + rng.geometric(1.0 / self.mean_len)
    }

    /// Samples offsets (seconds from the burst start) for a burst of
    /// length `len`, in non-decreasing order starting at zero.
    pub fn sample_offsets(&self, len: u64, rng: &mut RngStream) -> Vec<f64> {
        let mut t = 0.0;
        let mut out = Vec::with_capacity(len as usize);
        for i in 0..len {
            if i > 0 {
                t += rng.exponential(1.0 / self.mean_gap_secs.max(1e-6));
            }
            out.push(t);
        }
        out
    }
}

/// Two-state Markov-modulated Poisson process.
///
/// Alternates between a *quiet* state and a *burst* state with
/// exponentially distributed sojourn times; events arrive as a Poisson
/// process whose rate depends on the state. This reproduces the episodic
/// pathologies of Section 3.3.1 (multi-day disk-error storms, the PBS
/// bug's three-month activity window).
#[derive(Debug, Clone)]
pub struct MarkovBurstProcess {
    /// Event rate in the quiet state (events/second; may be 0).
    pub quiet_rate: f64,
    /// Event rate in the burst state (events/second).
    pub burst_rate: f64,
    /// Mean quiet sojourn, seconds.
    pub mean_quiet_secs: f64,
    /// Mean burst sojourn, seconds.
    pub mean_burst_secs: f64,
}

impl MarkovBurstProcess {
    /// Generates event times in `[start, end)`, starting in the quiet
    /// state.
    ///
    /// # Panics
    ///
    /// Panics if rates are negative or sojourn means are not positive.
    pub fn generate(
        &self,
        start: Timestamp,
        end: Timestamp,
        rng: &mut RngStream,
    ) -> Vec<Timestamp> {
        assert!(
            self.quiet_rate >= 0.0 && self.burst_rate >= 0.0,
            "rates must be non-negative"
        );
        assert!(
            self.mean_quiet_secs > 0.0 && self.mean_burst_secs > 0.0,
            "sojourn means must be positive"
        );
        let mut out = Vec::new();
        let mut t = start;
        let mut bursting = false;
        while t < end {
            let sojourn = if bursting {
                rng.exponential(1.0 / self.mean_burst_secs)
            } else {
                rng.exponential(1.0 / self.mean_quiet_secs)
            };
            let state_end = (t + Duration::from_secs_f64(sojourn)).min(end);
            let rate = if bursting {
                self.burst_rate
            } else {
                self.quiet_rate
            };
            if rate > 0.0 {
                let mut et = t;
                loop {
                    et += Duration::from_secs_f64(rng.exponential(rate));
                    if et >= state_end {
                        break;
                    }
                    out.push(et);
                }
            }
            t = state_end;
            bursting = !bursting;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_count_is_near_expectation() {
        let mut rng = RngStream::from_seed(42);
        let start = Timestamp::EPOCH;
        let end = start + Duration::from_secs(100_000);
        let events = PoissonProcess::new(0.01).generate(start, end, &mut rng);
        let n = events.len() as f64; // expect 1000
        assert!((900.0..1100.0).contains(&n), "n = {n}");
    }

    #[test]
    fn poisson_events_sorted_and_in_range() {
        let mut rng = RngStream::from_seed(43);
        let start = Timestamp::from_secs(500);
        let end = start + Duration::from_secs(1000);
        let events = PoissonProcess::new(0.5).generate(start, end, &mut rng);
        assert!(events.windows(2).all(|w| w[0] <= w[1]));
        assert!(events.iter().all(|&t| t >= start && t < end));
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn poisson_rejects_zero_rate() {
        let _ = PoissonProcess::new(0.0);
    }

    #[test]
    fn renewal_with_lognormal_generates_sorted() {
        let mut rng = RngStream::from_seed(44);
        let mut p = RenewalProcess::new(DistSampler::lognormal(3.0, 1.0));
        let start = Timestamp::EPOCH;
        let end = start + Duration::from_secs(10_000);
        let events = p.generate(start, end, &mut rng);
        assert!(!events.is_empty());
        assert!(events.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn renewal_min_gap_enforced() {
        let mut rng = RngStream::from_seed(45);
        let gap = Duration::from_secs(10);
        let mut p = RenewalProcess::new(DistSampler::new("tiny", |_| 0.001)).with_min_gap(gap);
        let start = Timestamp::EPOCH;
        let end = start + Duration::from_secs(100);
        let events = p.generate(start, end, &mut rng);
        assert_eq!(events.len(), 9);
        assert!(events.windows(2).all(|w| w[1] - w[0] >= gap));
    }

    #[test]
    fn burst_len_mean_close() {
        let mut rng = RngStream::from_seed(46);
        let spec = BurstSpec {
            mean_len: 20.0,
            mean_gap_secs: 1.0,
            spread: 4,
        };
        let mean = (0..5000)
            .map(|_| spec.sample_len(&mut rng) as f64)
            .sum::<f64>()
            / 5000.0;
        assert!((mean - 20.0).abs() < 1.0, "mean {mean}");
        assert!(spec.sample_len(&mut rng) >= 1);
        assert_eq!(BurstSpec::singleton().sample_len(&mut rng), 1);
    }

    #[test]
    fn burst_offsets_start_at_zero_and_increase() {
        let mut rng = RngStream::from_seed(47);
        let spec = BurstSpec {
            mean_len: 10.0,
            mean_gap_secs: 2.0,
            spread: 1,
        };
        let offs = spec.sample_offsets(10, &mut rng);
        assert_eq!(offs.len(), 10);
        assert_eq!(offs[0], 0.0);
        assert!(offs.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn markov_burst_is_bursty() {
        let mut rng = RngStream::from_seed(48);
        let p = MarkovBurstProcess {
            quiet_rate: 0.0,
            burst_rate: 10.0,
            mean_quiet_secs: 1000.0,
            mean_burst_secs: 100.0,
        };
        let start = Timestamp::EPOCH;
        let end = start + Duration::from_secs(100_000);
        let events = p.generate(start, end, &mut rng);
        assert!(!events.is_empty());
        assert!(events.windows(2).all(|w| w[0] <= w[1]));
        // With quiet_rate 0 the interarrival distribution must be a
        // mixture: many short gaps (in-burst) and some very long ones
        // (quiet sojourns).
        let gaps: Vec<f64> = events
            .windows(2)
            .map(|w| (w[1] - w[0]).as_secs_f64())
            .collect();
        let short = gaps.iter().filter(|&&g| g < 1.0).count();
        let long = gaps.iter().filter(|&&g| g > 100.0).count();
        assert!(short > 10 * long.max(1), "short {short} long {long}");
        assert!(long >= 1, "expected at least one quiet sojourn gap");
    }

    #[test]
    fn markov_burst_respects_range() {
        let mut rng = RngStream::from_seed(49);
        let p = MarkovBurstProcess {
            quiet_rate: 0.1,
            burst_rate: 5.0,
            mean_quiet_secs: 50.0,
            mean_burst_secs: 20.0,
        };
        let start = Timestamp::from_secs(1000);
        let end = start + Duration::from_secs(5000);
        for &t in &p.generate(start, end, &mut rng) {
            assert!(t >= start && t < end);
        }
    }
}
