//! Node populations and naming schemes per system.

use sclog_types::{NodeId, SourceInterner, SystemId};

/// The node population of one simulated system.
///
/// `compute` holds the ordinary nodes; `admin` the chatty
/// administrative/service nodes that dominate Figure 2(b)'s head;
/// `hotspots` the designated pathological nodes (Spirit's `sn373`, the
/// Thunderbird VAPI node) that profiles reference by index.
#[derive(Debug)]
pub struct NodeSet {
    /// Ordinary compute/service sources.
    pub compute: Vec<NodeId>,
    /// Administrative nodes (syslog collectors, login nodes).
    pub admin: Vec<NodeId>,
    /// Pathological hotspot nodes, in profile order.
    pub hotspots: Vec<NodeId>,
}

impl NodeSet {
    /// Builds the population for a system, interning every name.
    pub fn build(system: SystemId, interner: &mut SourceInterner) -> Self {
        let spec = system.spec();
        let n = spec.sources as usize;
        let mut compute = Vec::with_capacity(n);
        let mut admin = Vec::new();
        let mut hotspots = Vec::new();
        match system {
            SystemId::BlueGeneL => {
                // Midplane locations: R<rack>-M<mid>-N<node>-C:J<jtag>-U<unit>.
                for i in 0..n {
                    let rack = i / 32;
                    let mid = (i / 16) % 2;
                    let nc = i % 16;
                    compute.push(interner.intern(&format!(
                        "R{rack:02}-M{mid}-N{nc}-C:J{j:02}-U{u:02}",
                        j = (i * 7) % 18,
                        u = (i * 3) % 4,
                    )));
                }
                for i in 0..4 {
                    admin.push(interner.intern(&format!("bglsn{i}")));
                }
                hotspots.push(interner.intern("R23-M1-N2-C:J13-U11"));
            }
            SystemId::Thunderbird => {
                for i in 1..=n {
                    compute.push(interner.intern(&format!("tbird-cn{i}")));
                }
                for i in 1..=4 {
                    admin.push(interner.intern(&format!("tbird-admin{i}")));
                }
                // The node responsible for 643,925 VAPI errors.
                hotspots.push(compute[370]);
            }
            SystemId::RedStorm => {
                for i in 0..n {
                    compute.push(interner.intern(&format!("nid{i:05}")));
                }
                for i in 1..=8 {
                    admin.push(interner.intern(&format!("ddn{i}")));
                }
                admin.push(interner.intern("smw0"));
                hotspots.push(admin[2]); // ddn3
            }
            SystemId::Spirit => {
                for i in 1..=n {
                    compute.push(interner.intern(&format!("sn{i}")));
                }
                admin.push(interner.intern("sadmin1"));
                admin.push(interner.intern("sadmin2"));
                // sn373 logged more than half of all Spirit alerts;
                // sn325 had the coincident independent disk failure.
                hotspots.push(compute[372]); // sn373
                hotspots.push(compute[324]); // sn325
            }
            SystemId::Liberty => {
                for i in 1..=n {
                    compute.push(interner.intern(&format!("ln{i}")));
                }
                admin.push(interner.intern("ladmin1"));
                admin.push(interner.intern("ladmin2"));
                hotspots.push(compute[187]); // ln188
            }
        }
        NodeSet {
            compute,
            admin,
            hotspots,
        }
    }

    /// Number of distinct sources across all roles (hotspots may be
    /// members of the compute or admin lists).
    pub fn total(&self) -> usize {
        let mut set: std::collections::HashSet<_> = self.compute.iter().copied().collect();
        set.extend(self.admin.iter().copied());
        set.extend(self.hotspots.iter().copied());
        set.len()
    }

    /// Event-path component name for Red Storm (cabinet coordinates),
    /// derived from a compute index.
    pub fn rs_component_name(i: usize) -> String {
        format!(
            "c{}-{}c{}s{}n{}",
            i / 768,
            (i / 96) % 8,
            (i / 32) % 3,
            (i / 4) % 8,
            i % 4
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn populations_match_specs() {
        let mut interner = SourceInterner::new();
        for &sys in &sclog_types::ALL_SYSTEMS {
            let mut local = SourceInterner::new();
            let ns = NodeSet::build(sys, &mut local);
            assert_eq!(ns.compute.len(), sys.spec().sources as usize, "{sys}");
            assert!(!ns.admin.is_empty(), "{sys}");
            assert!(!ns.hotspots.is_empty(), "{sys}");
            // Every interned name belongs to a role; no accidental extras.
            assert_eq!(local.len(), ns.total(), "{sys}: duplicate node names");
            let _ = &mut interner;
        }
    }

    #[test]
    fn spirit_hotspots_are_the_paper_nodes() {
        let mut interner = SourceInterner::new();
        let ns = NodeSet::build(SystemId::Spirit, &mut interner);
        assert_eq!(interner.name(ns.hotspots[0]), "sn373");
        assert_eq!(interner.name(ns.hotspots[1]), "sn325");
    }

    #[test]
    fn rs_component_names_are_formed() {
        assert_eq!(NodeSet::rs_component_name(0), "c0-0c0s0n0");
        let name = NodeSet::rs_component_name(1234);
        assert!(name.starts_with('c'));
    }

    #[test]
    fn bgl_locations_look_like_locations() {
        let mut interner = SourceInterner::new();
        let ns = NodeSet::build(SystemId::BlueGeneL, &mut interner);
        let name = interner.name(ns.compute[0]);
        assert!(name.starts_with("R00-M0-N0-C:J"), "{name}");
    }
}
