//! Message corruption and collection loss.
//!
//! Section 3.2.1: "Even on supercomputers with highly engineered RAS
//! systems … log entries can be corrupted. We saw messages truncated,
//! partially overwritten, and incorrectly timestamped." And the syslog
//! systems use UDP, "resulting in some messages being lost during
//! network contention."

use sclog_desim::RngStream;
use sclog_types::{Message, SourceInterner};

/// What the corruptor did to a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CorruptionKind {
    /// Body cut off mid-token (the VAPI_EAGAI example).
    Truncated,
    /// Body tail overwritten with a fragment of another message.
    Overwritten,
    /// Source name garbled, thwarting attribution (Figure 2b's tail).
    GarbledSource,
    /// Timestamp shifted wildly.
    BadTimestamp,
}

/// Applies one randomly chosen corruption to a message in place.
///
/// `other_body` supplies the overwrite fragment (any other message's
/// body). Returns what was done.
pub fn corrupt(
    msg: &mut Message,
    other_body: &str,
    interner: &mut SourceInterner,
    rng: &mut RngStream,
) -> CorruptionKind {
    // Truncation and overwriting dominate (the VAPI examples);
    // timestamp corruption is kept rare and small, because a displaced
    // alert escapes its burst and inflates filtered counts — the real
    // logs' filtered counts bound how often that can have happened.
    let roll = rng.uniform();
    if roll < 0.45 {
        truncate_body(msg, rng);
        CorruptionKind::Truncated
    } else if roll < 0.85 {
        truncate_body(msg, rng);
        let cut = char_boundary(other_body, other_body.len() / 2);
        msg.body.push_str(&other_body[..cut]);
        CorruptionKind::Overwritten
    } else if roll < 0.995 {
        let garbled = format!("\u{fffd}{:06x}", rng.below(0xffffff));
        msg.source = interner.intern(&garbled);
        CorruptionKind::GarbledSource
    } else {
        // Incorrectly timestamped: shifted up to ±5 minutes.
        let shift = rng.int_in(-300, 300);
        msg.time += sclog_types::Duration::from_secs(shift);
        CorruptionKind::BadTimestamp
    }
}

fn truncate_body(msg: &mut Message, rng: &mut RngStream) {
    if msg.body.is_empty() {
        return;
    }
    let cut = char_boundary(&msg.body, rng.below(msg.body.len() as u64) as usize);
    msg.body.truncate(cut);
}

fn char_boundary(s: &str, mut i: usize) -> usize {
    i = i.min(s.len());
    while i > 0 && !s.is_char_boundary(i) {
        i -= 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;
    use sclog_types::{NodeId, Severity, SystemId, Timestamp};

    fn msg() -> Message {
        Message::new(
            SystemId::Thunderbird,
            Timestamp::from_secs(1_000_000),
            NodeId::from_index(0),
            "kernel",
            Severity::None,
            "VIPKL(1): [create_mr] MM_bld_hh_mr failed (-253:VAPI_EAGAIN)",
        )
    }

    #[test]
    fn corruption_kinds_all_occur_and_never_panic() {
        let mut interner = SourceInterner::new();
        interner.intern("tbird-cn1");
        let mut rng = RngStream::from_seed(7);
        let mut seen = std::collections::HashSet::new();
        // BadTimestamp is deliberately rare (p = 0.005), so run until all
        // four kinds appear; the cap keeps a genuinely unreachable branch
        // from hanging the suite. Deterministic given the fixed seed.
        for _ in 0..20_000 {
            let mut m = msg();
            let kind = corrupt(&mut m, "another message body", &mut interner, &mut rng);
            seen.insert(kind);
            if seen.len() == 4 {
                break;
            }
        }
        assert_eq!(seen.len(), 4, "all corruption kinds exercised");
    }

    #[test]
    fn truncation_shortens_body() {
        let mut interner = SourceInterner::new();
        let mut rng = RngStream::from_seed(1);
        let mut any_shorter = false;
        for _ in 0..50 {
            let mut m = msg();
            let before = m.body.len();
            if corrupt(&mut m, "x", &mut interner, &mut rng) == CorruptionKind::Truncated {
                any_shorter |= m.body.len() < before;
            }
        }
        assert!(any_shorter);
    }

    #[test]
    fn garbled_source_is_new_name() {
        let mut interner = SourceInterner::new();
        let orig = interner.intern("tbird-cn1");
        let mut rng = RngStream::from_seed(3);
        loop {
            let mut m = msg();
            if corrupt(&mut m, "x", &mut interner, &mut rng) == CorruptionKind::GarbledSource {
                assert_ne!(m.source, orig);
                assert!(interner.name(m.source).starts_with('\u{fffd}'));
                break;
            }
        }
    }

    #[test]
    fn multibyte_bodies_truncate_on_boundaries() {
        let mut interner = SourceInterner::new();
        let mut rng = RngStream::from_seed(5);
        for _ in 0..100 {
            let mut m = msg();
            m.body = "héllo wörld ünicode ärgh".to_owned();
            let _ = corrupt(&mut m, "öther böd", &mut interner, &mut rng);
            // String invariants hold (would panic inside otherwise).
            let _ = m.body.len();
        }
    }
}
