//! Calibration profiles: how each system's failures and background
//! traffic behave.
//!
//! Counts come from the catalog in `sclog-rules` (Table 4); this module
//! adds the *dynamics*: arrival processes, burst shapes, node
//! placement, episodic windows, cascades, and background severity mixes
//! (Tables 5 and 6). Every documented anomaly gets an explicit knob:
//! Spirit's `sn373` hotspot, the Thunderbird VAPI node, the Liberty PBS
//! bug window, the GM_PAR→GM_LANAI cascade of Figure 3, the spatially
//! correlated SMP clock bug, and Liberty's OS-upgrade rate shift
//! (Figure 2a).

use sclog_types::SystemId;

/// Failure interarrival model for one category.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Arrival {
    /// Memoryless (Poisson) arrivals — physically driven failures like
    /// ECC (Figure 5: "basically independent").
    Exponential,
    /// Log-normal renewal arrivals with the given sigma — clustered,
    /// heavy-tailed arrivals (most software and storage categories).
    LogNormal {
        /// Sigma of the underlying normal; larger = burstier.
        sigma: f64,
    },
}

/// A cascade link: this category's failures tend to follow another
/// category's failures (Figure 3's GM_PAR/GM_LANAI relationship,
/// "a common such correlation results from cascading failures").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Link {
    /// Name of the earlier-generated category to follow.
    pub to: &'static str,
    /// Fraction of this category's failures that follow a linked
    /// failure (the rest are independent).
    pub prob: f64,
    /// Mean lag behind the linked failure, seconds (exponential
    /// jitter).
    pub lag_secs: f64,
}

/// Generation dynamics for one alert category.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenProfile {
    /// Category name — must match the `sclog-rules` catalog.
    pub name: &'static str,
    /// Failure arrival model.
    pub arrival: Arrival,
    /// Active window as a fraction of the observation span (episodic
    /// pathologies like the PBS bug live in a sub-window).
    pub window: (f64, f64),
    /// Mean gap between redundant messages within one failure's burst,
    /// seconds (kept below the 5 s filter threshold so that filtered ≈
    /// failures, as the calibration requires).
    pub burst_gap_secs: f64,
    /// Number of distinct nodes a burst round-robins across.
    pub spread: u32,
    /// `(hotspot_index, fraction)`: route this fraction of failures to
    /// the numbered hotspot node.
    pub hotspot: Option<(usize, f64)>,
    /// Place each failure on a *contiguous group* of this many nodes
    /// simultaneously (the SMP clock bug under communication-heavy
    /// jobs).
    pub correlated_group: Option<u32>,
    /// Cascade link to an earlier category.
    pub link: Option<Link>,
}

impl GenProfile {
    /// Default dynamics: lognormal renewal over the full window,
    /// 1-second burst gaps, single-node bursts.
    pub const fn defaults(name: &'static str) -> Self {
        GenProfile {
            name,
            arrival: Arrival::LogNormal { sigma: 1.0 },
            window: (0.0, 1.0),
            burst_gap_secs: 1.0,
            spread: 1,
            hotspot: None,
            correlated_group: None,
            link: None,
        }
    }
}

macro_rules! profile {
    ($name:literal $(, $field:ident : $value:expr)* $(,)?) => {
        GenProfile {
            $($field: $value,)*
            ..GenProfile::defaults($name)
        }
    };
}

/// Severity weights for background traffic, as (severity name, count)
/// pairs. Counts are the non-alert message counts from Tables 5/6.
pub type SeverityWeights = &'static [(&'static str, u64)];

/// Full generation profile for one system.
#[derive(Debug, Clone, Copy)]
pub struct SystemProfile {
    /// Which system.
    pub system: SystemId,
    /// Total non-alert messages over the observation window (Table 2
    /// messages minus alerts), before scaling.
    pub background_total: u64,
    /// Background severity mix; empty for systems without severities.
    pub bg_severity: SeverityWeights,
    /// Background (facility, body-template) pool.
    pub bg_templates: &'static [(&'static str, &'static str)],
    /// Fraction of background riding Red Storm's event path (0 for
    /// other systems).
    pub bg_event_frac: f64,
    /// Piecewise-constant background rate regimes: `(start_frac,
    /// relative_rate)`, sorted by start. Liberty's OS upgrade lives
    /// here.
    pub rate_regimes: &'static [(f64, f64)],
    /// Fraction of background emitted by administrative nodes (the
    /// chatty head of Figure 2b).
    pub admin_frac: f64,
    /// Zipf exponent for the per-node share of compute-node traffic.
    pub zipf: f64,
    /// Probability a rendered message is corrupted.
    pub corrupt_prob: f64,
    /// Probability a message is lost in collection (UDP syslog paths;
    /// models random drops).
    pub loss_prob: f64,
    /// Collector drain rate in messages/second for the token-bucket
    /// contention model (0 disables it; reliable TCP/JTAG paths).
    /// Sized above single-storm rates so calibrated counts survive;
    /// only overlapping storms contend.
    pub collector_rate: f64,
    /// Per-category dynamics; must cover the system's whole catalog.
    pub categories: &'static [GenProfile],
}

/// The profile for a system.
pub fn system_profile(system: SystemId) -> &'static SystemProfile {
    match system {
        SystemId::BlueGeneL => &BGL_PROFILE,
        SystemId::Thunderbird => &TBIRD_PROFILE,
        SystemId::RedStorm => &RSTORM_PROFILE,
        SystemId::Spirit => &SPIRIT_PROFILE,
        SystemId::Liberty => &LIBERTY_PROFILE,
    }
}

// ---------------------------------------------------------------- BG/L

/// Non-alert severity mix from Table 5 (messages minus alerts).
static BGL_BG_SEVERITY: SeverityWeights = &[
    ("FATAL", 507_103),
    ("FAILURE", 1652),
    ("SEVERE", 19_213),
    ("ERROR", 112_355),
    ("WARNING", 23_357),
    ("INFO", 3_735_823),
];

static BGL_BG_TEMPLATES: &[(&str, &str)] = &[
    ("KERNEL", "instruction cache parity error corrected"),
    ("KERNEL", "CE sym {num}, at {hex}, mask {hex}"),
    ("KERNEL", "generating core.{num}"),
    (
        "KERNEL",
        "total of {num} ddr error(s) detected and corrected",
    ),
    ("KERNEL", "{num} floating point alignment exceptions"),
    ("APP", "ciod: generated {num} core files for program {path}"),
    (
        "MMCS",
        "idoproxydb hit ASSERT condition: line {num} of file {path}",
    ),
    ("MONITOR", "node card status: no ALERTs are active"),
    ("KERNEL", "NodeCard temperature reading {num} C"),
    ("DISCOVERY", "node card VPD check: missing severity unknown"),
];

static BGL_CATEGORIES: &[GenProfile] = &[
    profile!("KERNDTLB", spread: 4, burst_gap_secs: 0.4),
    profile!("KERNSTOR", spread: 4, burst_gap_secs: 0.4),
    profile!("APPSEV", spread: 8, burst_gap_secs: 0.8),
    profile!("KERNMNTF", spread: 2, burst_gap_secs: 0.6),
    profile!("KERNTERM", spread: 4, burst_gap_secs: 0.8,
        link: Some(Link { to: "APPSEV", prob: 0.6, lag_secs: 25.0 })),
    profile!("KERNREC", spread: 2),
    profile!("APPREAD", spread: 4,
        link: Some(Link { to: "APPSEV", prob: 0.5, lag_secs: 15.0 })),
    profile!("KERNRTSP", spread: 2,
        link: Some(Link { to: "KERNTERM", prob: 0.5, lag_secs: 40.0 })),
    profile!("APPRES", spread: 4,
        link: Some(Link { to: "APPSEV", prob: 0.4, lag_secs: 20.0 })),
    profile!("APPUNAV", spread: 8),
    profile!("KERNMC"),
    profile!("KERNPAN", link: Some(Link { to: "KERNMC", prob: 0.3, lag_secs: 30.0 })),
    profile!("KERNSOCK"),
    profile!("KERNBIT"),
    profile!("KERNDCR"),
    profile!("KERNEXC"),
    profile!("KERNFPU"),
    profile!("KERNINST"),
    profile!("KERNMICRO"),
    profile!("KERNNOETH"),
    profile!("KERNPROM"),
    profile!("KERNRTSA"),
    profile!("KERNTLBP"),
    profile!("KERNCON"),
    profile!("KERNPOW"),
    profile!("CIODEXIT"),
    profile!("LINKDISC"),
    profile!("LINKPAP"),
    profile!("LINKIAP"),
    profile!("MASABNORM"),
    profile!("MONILL"),
    profile!("MONNULL"),
    profile!("MONPOW"),
    profile!("MONTEMP"),
    profile!("MMCSRAS"),
    profile!("CIODSOCK"),
    profile!("APPALLOC"),
    profile!("APPBUSY"),
    profile!("APPCHILD"),
    profile!("APPTORUS"),
    profile!("KERNPBS"),
];

static BGL_PROFILE: SystemProfile = SystemProfile {
    system: SystemId::BlueGeneL,
    background_total: 4_399_503,
    bg_severity: BGL_BG_SEVERITY,
    bg_templates: BGL_BG_TEMPLATES,
    bg_event_frac: 0.0,
    rate_regimes: &[(0.0, 1.0)],
    admin_frac: 0.05,
    zipf: 0.6,
    corrupt_prob: 0.0002,
    loss_prob: 0.0, // JTAG/DB2 path is reliable
    collector_rate: 0.0,
    categories: BGL_CATEGORIES,
};

// --------------------------------------------------------- Thunderbird

static TBIRD_BG_TEMPLATES: &[(&str, &str)] = &[
    ("kernel", "eth0: no IPv6 routers present"),
    ("sshd[{num}]", "session opened for user root by (uid=0)"),
    ("ntpd[{num}]", "synchronized to 10.0.0.{num}, stratum 2"),
    ("crond[{num}]", "(root) CMD (run-parts /etc/cron.hourly)"),
    (
        "pbs_mom",
        "scan_for_terminated: job {job} task 1 terminated",
    ),
    ("kernel", "ib_sm_sweep.c: SM sweep complete"),
    ("dhclient", "DHCPREQUEST on eth1 to 10.1.0.{num} port 67"),
    ("postfix/smtpd[{num}]", "connect from localhost[127.0.0.1]"),
    ("gmond", "metric tcp_retrans value {num}"),
    ("irqbalance", "irq {num} affinity set"),
];

static TBIRD_CATEGORIES: &[GenProfile] = &[
    profile!("VAPI", arrival: Arrival::LogNormal { sigma: 1.6 },
        hotspot: Some((0, 0.2)), spread: 1, burst_gap_secs: 0.3),
    profile!("PBS_CON", spread: 1, window: (0.1, 0.95)),
    profile!("MPT", spread: 1, burst_gap_secs: 0.7),
    profile!("EXT_FS", spread: 1, burst_gap_secs: 1.5),
    // The SMP kernel clock bug: spatially correlated across the node
    // groups running communication-heavy jobs.
    profile!("CPU", correlated_group: Some(8), spread: 8, burst_gap_secs: 2.0),
    profile!("SCSI", spread: 1, burst_gap_secs: 1.2),
    // Critical ECC memory alerts: independent physical failures
    // (Figure 5), essentially unfiltered (146 raw / 143 filtered).
    profile!("ECC", arrival: Arrival::Exponential, spread: 1, burst_gap_secs: 0.1),
    profile!("PBS_BFD", window: (0.3, 0.9)),
    profile!("CHK_DSK", spread: 2, burst_gap_secs: 2.5),
    profile!("NMI", spread: 1),
];

static TBIRD_PROFILE: SystemProfile = SystemProfile {
    system: SystemId::Thunderbird,
    background_total: 207_963_953,
    bg_severity: &[],
    bg_templates: TBIRD_BG_TEMPLATES,
    bg_event_frac: 0.0,
    rate_regimes: &[(0.0, 1.0), (0.55, 1.4)],
    admin_frac: 0.25,
    zipf: 0.8,
    corrupt_prob: 0.0005, // the VAPI corruption examples of §3.2.1
    loss_prob: 0.003,
    collector_rate: 200.0,
    categories: TBIRD_CATEGORIES,
};

// ----------------------------------------------------------- Red Storm

/// Non-alert syslog severity mix from Table 6 (messages minus alerts).
static RSTORM_BG_SEVERITY: SeverityWeights = &[
    ("EMERG", 3),
    ("ALERT", 609),
    ("CRIT", 2693),
    ("ERR", 2_015_814),
    ("WARNING", 2_154_674),
    ("NOTICE", 3_759_620),
    ("INFO", 15_714_245),
    ("DEBUG", 291_764),
];

static RSTORM_BG_TEMPLATES: &[(&str, &str)] = &[
    (
        "kernel",
        "Lustre: {num}:({path}:{num}:ldlm_handle_ast()) completion AST arrived",
    ),
    ("kernel", "scsi: aborting command due to timeout recovered"),
    ("syslogd", "restart (remote reception)"),
    ("pbs_server", "job {job} queued at priority {num}"),
    ("kernel", "ip_tables: (C) 2000-2002 Netfilter core team"),
    ("ddn", "DMT_STAT tier {num} throughput {num} MB/s"),
    ("kernel", "nfs: server responding again"),
    ("init", "Switching to runlevel: {num}"),
];

/// Red Storm event-path background bodies (facility, body).
pub static RSTORM_EVENT_TEMPLATES: &[(&str, &str)] = &[
    (
        "ec_heartbeat",
        "src:::{node} svc:::{node} node heartbeat ok seq {num}",
    ),
    (
        "ec_console_log",
        "src:::{node} console buffer flushed {num} bytes",
    ),
    (
        "ec_power_status",
        "src:::{node} power rail nominal {num} mV",
    ),
    ("ec_link_status", "src:::{node} seastar link up lanes {num}"),
];

static RSTORM_CATEGORIES: &[GenProfile] = &[
    // The DDN disk-failure storms behind Table 6's CRIT dominance.
    profile!("BUS_PAR", arrival: Arrival::LogNormal { sigma: 1.8 },
        hotspot: Some((0, 0.8)), burst_gap_secs: 0.05),
    profile!("HBEAT", spread: 3, burst_gap_secs: 1.0),
    profile!("PTL_EXP", spread: 4, burst_gap_secs: 1.5,
        link: Some(Link { to: "HBEAT", prob: 0.4, lag_secs: 45.0 })),
    profile!("ADDR_ERR", hotspot: Some((0, 0.9)), burst_gap_secs: 0.05),
    profile!("CMD_ABORT", hotspot: Some((0, 0.5)), burst_gap_secs: 1.0),
    profile!("PTL_ERR", spread: 2,
        link: Some(Link { to: "PTL_EXP", prob: 0.5, lag_secs: 30.0 })),
    profile!("TOAST", spread: 1),
    profile!("EW", spread: 1, burst_gap_secs: 1.5),
    profile!("WT", spread: 1,
        link: Some(Link { to: "EW", prob: 0.6, lag_secs: 20.0 })),
    profile!("RBB", spread: 2),
    profile!("DSK_FAIL", arrival: Arrival::Exponential, hotspot: Some((0, 0.7)),
        burst_gap_secs: 0.1),
    profile!("OST", spread: 1),
];

static RSTORM_PROFILE: SystemProfile = SystemProfile {
    system: SystemId::RedStorm,
    background_total: 217_430_424,
    bg_severity: RSTORM_BG_SEVERITY,
    bg_templates: RSTORM_BG_TEMPLATES,
    bg_event_frac: 0.89, // most Red Storm traffic rides the RAS network
    rate_regimes: &[(0.0, 1.0)],
    admin_frac: 0.15,
    zipf: 0.7,
    corrupt_prob: 0.0002,
    loss_prob: 0.0, // TCP event path; syslog share small
    collector_rate: 0.0,
    categories: RSTORM_CATEGORIES,
};

// --------------------------------------------------------------- Spirit

static SPIRIT_BG_TEMPLATES: &[(&str, &str)] = &[
    ("kernel", "eth0: link up, 1000Mbps, full-duplex"),
    ("sshd[{num}]", "session opened for user root by (uid=0)"),
    ("ntpd[{num}]", "synchronized to 10.2.0.{num}, stratum 3"),
    ("crond[{num}]", "(root) CMD (/usr/lib64/sa/sa1 1 1)"),
    (
        "pbs_mom",
        "scan_for_terminated: job {job} task 1 terminated",
    ),
    ("automount[{num}]", "expired /home/{path}"),
    (
        "kernel",
        "martian source 10.2.{num}.{num} from 10.2.{num}.{num}",
    ),
    ("syslogd", "restart"),
];

static SPIRIT_CATEGORIES: &[GenProfile] = &[
    // sn373's disk produced more than half of all Spirit alerts; the
    // 56.8M-alert six-day storm is one of these failures.
    profile!("EXT_CCISS", arrival: Arrival::LogNormal { sigma: 1.8 },
        hotspot: Some((0, 0.65)), burst_gap_secs: 0.009),
    profile!("EXT_FS", arrival: Arrival::LogNormal { sigma: 1.8 },
        hotspot: Some((0, 0.55)), burst_gap_secs: 0.012),
    profile!("PBS_CHK", window: (0.55, 0.95), arrival: Arrival::LogNormal { sigma: 0.8 }),
    profile!("GM_PAR", spread: 1),
    profile!("GM_LANAI", link: Some(Link { to: "GM_PAR", prob: 0.5, lag_secs: 90.0 })),
    profile!("PBS_CON", window: (0.2, 0.9)),
    profile!("GM_MAP", spread: 1),
    profile!("PBS_BFD", window: (0.55, 0.95),
        link: Some(Link { to: "PBS_CHK", prob: 0.5, lag_secs: 60.0 })),
];

static SPIRIT_PROFILE: SystemProfile = SystemProfile {
    system: SystemId::Spirit,
    background_total: 99_482_405,
    bg_severity: &[],
    bg_templates: SPIRIT_BG_TEMPLATES,
    bg_event_frac: 0.0,
    rate_regimes: &[(0.0, 1.0), (0.4, 1.3)],
    admin_frac: 0.2,
    zipf: 0.8,
    corrupt_prob: 0.0004,
    loss_prob: 0.003,
    collector_rate: 160.0,
    categories: SPIRIT_CATEGORIES,
};

// -------------------------------------------------------------- Liberty

static LIBERTY_BG_TEMPLATES: &[(&str, &str)] = &[
    ("kernel", "eth0: link up, 1000Mbps, full-duplex"),
    ("sshd[{num}]", "session opened for user root by (uid=0)"),
    ("ntpd[{num}]", "synchronized to 10.3.0.{num}, stratum 3"),
    ("crond[{num}]", "(root) CMD (run-parts /etc/cron.hourly)"),
    (
        "pbs_mom",
        "scan_for_terminated: job {job} task 1 terminated",
    ),
    ("gm_board_info", "lanai clock value {num}"),
    ("automount[{num}]", "attempting to mount entry /misc/{path}"),
    ("kernel", "VFS: busy inodes on changed media"),
];

static LIBERTY_CATEGORIES: &[GenProfile] = &[
    // The PBS bug: ~three months of job-fatal task_check alerts
    // (Figure 4's dense horizontal cluster).
    profile!("PBS_CHK", window: (0.7, 0.97), arrival: Arrival::LogNormal { sigma: 0.7 }),
    profile!("PBS_BFD", window: (0.7, 0.97),
        link: Some(Link { to: "PBS_CHK", prob: 0.6, lag_secs: 60.0 })),
    profile!("PBS_CON", window: (0.2, 0.9)),
    // GM_PAR precedes GM_LANAI often but not always (Figure 3).
    profile!("GM_PAR", window: (0.15, 0.9)),
    profile!("GM_LANAI", window: (0.15, 0.9),
        link: Some(Link { to: "GM_PAR", prob: 0.6, lag_secs: 120.0 })),
    profile!("GM_MAP", window: (0.15, 0.9)),
];

static LIBERTY_PROFILE: SystemProfile = SystemProfile {
    system: SystemId::Liberty,
    background_total: 265_566_779,
    bg_severity: &[],
    bg_templates: LIBERTY_BG_TEMPLATES,
    bg_event_frac: 0.0,
    // Figure 2a: the OS upgrade at the end of Q1-2005 (≈ day 110 of
    // 315) tripled traffic; later shifts are "not well understood".
    rate_regimes: &[(0.0, 1.0), (0.35, 3.2), (0.62, 2.2), (0.85, 1.4)],
    admin_frac: 0.3,
    zipf: 0.9,
    corrupt_prob: 0.0005,
    loss_prob: 0.003,
    collector_rate: 150.0,
    categories: LIBERTY_CATEGORIES,
};

#[cfg(test)]
mod tests {
    use super::*;
    use sclog_rules::catalog;
    use std::collections::HashSet;

    #[test]
    fn profiles_cover_every_catalog_category_exactly() {
        for &sys in &sclog_types::ALL_SYSTEMS {
            let profile = system_profile(sys);
            let profile_names: HashSet<&str> = profile.categories.iter().map(|p| p.name).collect();
            let catalog_names: HashSet<&str> = catalog(sys).iter().map(|s| s.name).collect();
            assert_eq!(
                profile_names, catalog_names,
                "{sys}: profile/catalog category mismatch"
            );
            assert_eq!(
                profile.categories.len(),
                catalog(sys).len(),
                "{sys}: duplicates"
            );
        }
    }

    #[test]
    fn links_point_to_earlier_categories() {
        for &sys in &sclog_types::ALL_SYSTEMS {
            let cats = system_profile(sys).categories;
            for (i, p) in cats.iter().enumerate() {
                if let Some(link) = p.link {
                    let target = cats.iter().position(|q| q.name == link.to);
                    let target = target.unwrap_or_else(|| {
                        panic!("{sys}: {} links to unknown {}", p.name, link.to)
                    });
                    assert!(target < i, "{sys}: {} links forward to {}", p.name, link.to);
                    assert!(link.prob > 0.0 && link.prob <= 1.0);
                    assert!(link.lag_secs > 0.0);
                }
            }
        }
    }

    #[test]
    fn background_totals_match_table2() {
        // messages(Table 2) − alerts(Table 2) per system.
        let expect = [
            (SystemId::BlueGeneL, 4_747_963u64 - 348_460),
            (SystemId::Thunderbird, 211_212_192 - 3_248_239),
            (SystemId::RedStorm, 219_096_168 - 1_665_744),
            (SystemId::Spirit, 272_298_969 - 172_816_564),
            (SystemId::Liberty, 265_569_231 - 2452),
        ];
        for (sys, bg) in expect {
            assert_eq!(system_profile(sys).background_total, bg, "{sys}");
        }
    }

    #[test]
    fn bgl_severity_weights_sum_to_background() {
        let total: u64 = BGL_BG_SEVERITY.iter().map(|&(_, n)| n).sum();
        assert_eq!(total, BGL_PROFILE.background_total);
    }

    #[test]
    fn rstorm_severity_weights_sum_to_syslog_background() {
        let total: u64 = RSTORM_BG_SEVERITY.iter().map(|&(_, n)| n).sum();
        // Syslog-path background = (1 - event_frac') of the total; the
        // exact Table 6 sum is 23,939,422.
        assert_eq!(total, 23_939_422);
        // Event fraction is consistent with that split to within 1%.
        let implied = 1.0 - total as f64 / RSTORM_PROFILE.background_total as f64;
        assert!((implied - RSTORM_PROFILE.bg_event_frac).abs() < 0.01);
    }

    #[test]
    fn regimes_are_sorted_and_start_at_zero() {
        for &sys in &sclog_types::ALL_SYSTEMS {
            let regimes = system_profile(sys).rate_regimes;
            assert_eq!(regimes[0].0, 0.0, "{sys}");
            assert!(
                regimes.windows(2).all(|w| w[0].0 < w[1].0),
                "{sys}: regimes out of order"
            );
            assert!(regimes
                .iter()
                .all(|&(f, r)| (0.0..1.0).contains(&f) && r > 0.0));
        }
    }

    #[test]
    fn windows_and_gaps_are_sane() {
        for &sys in &sclog_types::ALL_SYSTEMS {
            for p in system_profile(sys).categories {
                assert!(p.window.0 < p.window.1, "{sys}/{}", p.name);
                assert!((0.0..=1.0).contains(&p.window.0));
                assert!(p.window.1 <= 1.0);
                assert!(p.burst_gap_secs > 0.0);
                // Sub-threshold gaps keep filtered ≈ failures.
                assert!(p.burst_gap_secs < 5.0, "{sys}/{}: gap ≥ T", p.name);
                assert!(p.spread >= 1);
                if let Some((_, frac)) = p.hotspot {
                    assert!(frac > 0.0 && frac <= 1.0);
                }
            }
        }
    }
}
