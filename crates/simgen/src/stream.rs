//! Chunked emission of generated logs for the streaming pipeline.
//!
//! Generation itself cannot stream: the collector merges per-category
//! arrival processes with a global sort by `(time, seq)`, and the
//! corruption pass damages messages at random *global* indices, so the
//! full log must exist before the first message's final form is known.
//! What [`generate_stream`] offers instead is *bounded emission*: the
//! log is generated once internally, then handed out as owned
//! fixed-size [`GenChunk`]s so every downstream stage — tagging,
//! truth attachment, filtering — works on small batches and the
//! generator's buffers are progressively released as chunks move on.

use crate::generator::{generate_categories, GenLog};
use crate::Scale;
use sclog_types::{FailureId, Message, SourceInterner, SystemId};

/// One chunk of a generated log: messages plus the aligned ground
/// truth, with `base` giving the global index of `messages[0]`.
#[derive(Debug)]
pub struct GenChunk {
    /// Global index of the chunk's first message.
    pub base: usize,
    /// The chunk's messages, in global time order.
    pub messages: Vec<Message>,
    /// Ground-truth failure id per message (`None` = background).
    pub truth: Vec<Option<FailureId>>,
    /// Ground-truth category name per message (`None` = background).
    pub truth_category: Vec<Option<&'static str>>,
}

impl GenChunk {
    /// Number of messages in the chunk.
    pub fn len(&self) -> usize {
        self.messages.len()
    }

    /// Whether the chunk is empty (never yielded by [`GenStream`]).
    pub fn is_empty(&self) -> bool {
        self.messages.is_empty()
    }
}

/// A generated log being emitted chunk by chunk; see
/// [`generate_stream`].
///
/// Iterating yields [`GenChunk`]s covering the log exactly once, in
/// order; the stream itself keeps the log-level artifacts (interner,
/// counters) that outlive the per-message data.
#[derive(Debug)]
pub struct GenStream {
    system: SystemId,
    scale: Scale,
    interner: SourceInterner,
    failure_count: u64,
    lost_messages: u64,
    corrupted_messages: u64,
    total: usize,
    chunk: usize,
    base: usize,
    messages: std::vec::IntoIter<Message>,
    truth: std::vec::IntoIter<Option<FailureId>>,
    truth_category: std::vec::IntoIter<Option<&'static str>>,
}

/// Generates a log and returns it as a chunked stream.
///
/// Equivalent to [`generate_categories`] followed by slicing: the
/// concatenation of all chunks is exactly the batch log, in the same
/// order, with the same ground truth. `only` restricts alert
/// categories as in [`generate_categories`].
///
/// # Panics
///
/// Panics if `chunk_size` is zero, or as [`generate_categories`]
/// panics.
pub fn generate_stream(
    system: SystemId,
    scale: Scale,
    seed: u64,
    only: Option<&[&str]>,
    chunk_size: usize,
) -> GenStream {
    assert!(chunk_size > 0, "chunk size must be positive");
    GenStream::from_log(generate_categories(system, scale, seed, only), chunk_size)
}

impl GenStream {
    /// Wraps an already-generated log as a chunked stream.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size` is zero.
    pub fn from_log(log: GenLog, chunk_size: usize) -> Self {
        assert!(chunk_size > 0, "chunk size must be positive");
        GenStream {
            system: log.system,
            scale: log.scale,
            interner: log.interner,
            failure_count: log.failure_count,
            lost_messages: log.lost_messages,
            corrupted_messages: log.corrupted_messages,
            total: log.messages.len(),
            chunk: chunk_size,
            base: 0,
            messages: log.messages.into_iter(),
            truth: log.truth.into_iter(),
            truth_category: log.truth_category.into_iter(),
        }
    }

    /// Yields the next chunk, or `None` once the log is exhausted.
    /// Every chunk has `chunk_size` messages except possibly the last.
    pub fn next_chunk(&mut self) -> Option<GenChunk> {
        let messages: Vec<Message> = self.messages.by_ref().take(self.chunk).collect();
        if messages.is_empty() {
            return None;
        }
        let truth = self.truth.by_ref().take(messages.len()).collect();
        let truth_category = self.truth_category.by_ref().take(messages.len()).collect();
        let base = self.base;
        self.base += messages.len();
        Some(GenChunk {
            base,
            messages,
            truth,
            truth_category,
        })
    }

    /// The simulated system.
    pub fn system(&self) -> SystemId {
        self.system
    }

    /// The scale the log was generated at.
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// Interner resolving message sources (valid for every chunk).
    pub fn interner(&self) -> &SourceInterner {
        &self.interner
    }

    /// Total messages in the log (across all chunks).
    pub fn total_messages(&self) -> usize {
        self.total
    }

    /// Messages not yet emitted.
    pub fn remaining(&self) -> usize {
        self.total - self.base
    }

    /// Messages emitted so far — what a run report counts against the
    /// generator stage.
    pub fn emitted(&self) -> usize {
        self.base
    }

    /// Total distinct failures generated.
    pub fn failure_count(&self) -> u64 {
        self.failure_count
    }

    /// Messages dropped by the lossy collection path.
    pub fn lost_messages(&self) -> u64 {
        self.lost_messages
    }

    /// Messages that were corrupted.
    pub fn corrupted_messages(&self) -> u64 {
        self.corrupted_messages
    }
}

impl Iterator for GenStream {
    type Item = GenChunk;

    fn next(&mut self) -> Option<GenChunk> {
        self.next_chunk()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let chunks = self.remaining().div_ceil(self.chunk);
        (chunks, Some(chunks))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEED: u64 = 41;

    #[test]
    fn chunks_reassemble_the_batch_log() {
        let scale = Scale::tiny();
        let batch = generate_categories(SystemId::Liberty, scale, SEED, None);
        for chunk_size in [1, 7, 64, usize::MAX / 2] {
            let mut stream = generate_stream(SystemId::Liberty, scale, SEED, None, chunk_size);
            let mut messages = Vec::new();
            let mut truth = Vec::new();
            let mut truth_category = Vec::new();
            let mut expect_base = 0;
            while let Some(chunk) = stream.next_chunk() {
                assert_eq!(chunk.base, expect_base);
                assert!(!chunk.is_empty());
                assert_eq!(chunk.len(), chunk.truth.len());
                assert_eq!(chunk.len(), chunk.truth_category.len());
                expect_base += chunk.len();
                messages.extend(chunk.messages);
                truth.extend(chunk.truth);
                truth_category.extend(chunk.truth_category);
            }
            assert_eq!(messages, batch.messages, "chunk {chunk_size}");
            assert_eq!(truth, batch.truth);
            assert_eq!(truth_category, batch.truth_category);
            assert_eq!(stream.remaining(), 0);
            assert_eq!(stream.emitted(), stream.total_messages());
            assert_eq!(stream.interner().len(), batch.interner.len());
        }
    }

    #[test]
    fn metadata_matches_batch() {
        let scale = Scale::tiny();
        let batch = generate_categories(SystemId::Spirit, scale, SEED, None);
        let stream = generate_stream(SystemId::Spirit, scale, SEED, None, 128);
        assert_eq!(stream.system(), SystemId::Spirit);
        assert_eq!(stream.total_messages(), batch.len());
        assert_eq!(stream.failure_count(), batch.failure_count);
        assert_eq!(stream.lost_messages(), batch.lost_messages);
        assert_eq!(stream.corrupted_messages(), batch.corrupted_messages);
        assert_eq!(stream.scale().alerts, scale.alerts);
    }

    #[test]
    fn iterator_chunk_sizes_are_uniform_except_last() {
        let stream = generate_stream(SystemId::BlueGeneL, Scale::tiny(), SEED, None, 10);
        let sizes: Vec<usize> = stream.map(|c| c.len()).collect();
        assert!(!sizes.is_empty());
        for s in &sizes[..sizes.len() - 1] {
            assert_eq!(*s, 10);
        }
        assert!(*sizes.last().unwrap() <= 10);
    }

    #[test]
    fn size_hint_is_exact() {
        let mut stream = generate_stream(SystemId::Liberty, Scale::tiny(), SEED, None, 10);
        let (lo, hi) = stream.size_hint();
        assert_eq!(Some(lo), hi);
        let mut n = 0;
        while stream.next_chunk().is_some() {
            n += 1;
        }
        assert_eq!(n, lo);
    }

    #[test]
    fn category_subset_streams_too() {
        let only = ["PBS_CHK"];
        let batch = generate_categories(SystemId::Liberty, Scale::tiny(), SEED, Some(&only));
        let stream = generate_stream(SystemId::Liberty, Scale::tiny(), SEED, Some(&only), 32);
        let total: usize = stream.map(|c| c.len()).sum();
        assert_eq!(total, batch.len());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_chunk_rejected() {
        let _ = generate_stream(SystemId::Liberty, Scale::tiny(), SEED, None, 0);
    }
}
