//! The generation engine.

use crate::background::BackgroundSampler;
use crate::corruption::corrupt;
use crate::nodes::NodeSet;
use crate::profiles::{system_profile, Arrival, GenProfile};
use crate::Scale;
use sclog_desim::RngStream;
use sclog_parse::render_native;
use sclog_rules::catalog::{catalog, fill_template, CatSeverity, CategorySpec};
use sclog_types::{
    Duration, FailureId, Message, NodeId, Severity, SourceInterner, SystemId, Timestamp,
};
use std::collections::HashMap;

/// A generated log: time-sorted messages with parallel ground truth.
#[derive(Debug)]
pub struct GenLog {
    /// The simulated system.
    pub system: SystemId,
    /// Messages in time order.
    pub messages: Vec<Message>,
    /// Ground-truth failure id per message (`None` = background).
    pub truth: Vec<Option<FailureId>>,
    /// Ground-truth category name per message (`None` = background).
    pub truth_category: Vec<Option<&'static str>>,
    /// Interner resolving message sources.
    pub interner: SourceInterner,
    /// Total distinct failures generated.
    pub failure_count: u64,
    /// Messages dropped by the lossy collection path.
    pub lost_messages: u64,
    /// Messages that were corrupted.
    pub corrupted_messages: u64,
    /// The scale the log was generated at.
    pub scale: Scale,
}

impl GenLog {
    /// Number of messages.
    pub fn len(&self) -> usize {
        self.messages.len()
    }

    /// True if the log is empty (never, at valid scales).
    pub fn is_empty(&self) -> bool {
        self.messages.is_empty()
    }

    /// Renders the whole log as native-format text, one line per
    /// message.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(self.messages.len() * 96);
        for msg in &self.messages {
            out.push_str(&render_native(msg, &self.interner));
            out.push('\n');
        }
        out
    }

    /// Streams the log as native-format text to any writer without
    /// materializing it (pass `&mut w` to keep ownership, per the
    /// standard `W: Write` conventions). Returns the bytes written.
    ///
    /// # Errors
    ///
    /// Propagates the writer's I/O errors.
    pub fn write_to<W: std::io::Write>(&self, mut w: W) -> std::io::Result<u64> {
        let mut bytes = 0u64;
        for msg in &self.messages {
            let line = render_native(msg, &self.interner);
            w.write_all(line.as_bytes())?;
            w.write_all(b"\n")?;
            bytes += line.len() as u64 + 1;
        }
        Ok(bytes)
    }

    /// Total rendered bytes (the Table 2 "Size" analog).
    pub fn rendered_bytes(&self) -> u64 {
        self.messages
            .iter()
            .map(|m| render_native(m, &self.interner).len() as u64 + 1)
            .sum()
    }

    /// Messages per ground-truth failure id, for filter scoring.
    pub fn failures_by_category(&self) -> HashMap<&'static str, u64> {
        let mut seen: HashMap<&'static str, std::collections::HashSet<FailureId>> = HashMap::new();
        for (cat, fid) in self.truth_category.iter().zip(&self.truth) {
            if let (Some(c), Some(f)) = (cat, fid) {
                seen.entry(c).or_default().insert(*f);
            }
        }
        seen.into_iter().map(|(k, v)| (k, v.len() as u64)).collect()
    }
}

struct PendingMessage {
    msg: Message,
    truth: Option<FailureId>,
    category: Option<&'static str>,
    seq: u64,
}

/// Generates the log for one system.
///
/// Deterministic in `(system, scale, seed)`.
///
/// # Panics
///
/// Panics if the scale would generate more than 50 million messages —
/// lower the scale instead.
pub fn generate(system: SystemId, scale: Scale, seed: u64) -> GenLog {
    generate_categories(system, scale, seed, None)
}

/// Generates the log for one system, restricted to a subset of alert
/// categories (background traffic is always included).
///
/// Each category draws from its own seeded random stream, so a
/// category's alerts are identical whether or not other categories are
/// generated — useful for drilling into one pathology (e.g. Figure 5's
/// ECC analysis) without paying for Thunderbird's 3.2M VAPI alerts.
///
/// # Panics
///
/// Panics if `only` names a category the system does not have, or if
/// the scale would generate more than 50 million messages.
pub fn generate_categories(
    system: SystemId,
    scale: Scale,
    seed: u64,
    only: Option<&[&str]>,
) -> GenLog {
    let profile = system_profile(system);
    let specs = catalog(system);
    if let Some(names) = only {
        for name in names {
            assert!(
                specs.iter().any(|s| s.name == *name),
                "{system} has no category {name}"
            );
        }
    }
    let selected = |name: &str| only.is_none_or(|names| names.contains(&name));
    let spec_by_name: HashMap<&str, &CategorySpec> = specs.iter().map(|s| (s.name, s)).collect();

    // Budget check.
    let est_alerts: f64 = specs
        .iter()
        .filter(|s| selected(s.name))
        .map(|s| s.raw_count as f64)
        .sum::<f64>()
        * scale.alerts;
    let est_bg = profile.background_total as f64 * scale.background;
    assert!(
        est_alerts + est_bg < 50_000_000.0,
        "scale would generate ~{:.0}M messages; lower it",
        (est_alerts + est_bg) / 1e6
    );

    let mut interner = SourceInterner::new();
    let nodes = NodeSet::build(system, &mut interner);
    debug_assert_eq!(
        nodes.total(),
        interner.len(),
        "node roles must cover the interner"
    );
    let sys_spec = system.spec();
    let start = sys_spec.start();
    let span = sys_spec.span().as_secs_f64();

    let mut pending: Vec<PendingMessage> = Vec::with_capacity((est_alerts + est_bg) as usize + 16);
    let mut seq: u64 = 0;
    let mut failure_counter: u64 = 0;
    let mut lost: u64 = 0;

    // ---- Failure / alert generation, category by category ----------
    let mut failure_times: HashMap<&str, Vec<Timestamp>> = HashMap::new();
    for gp in profile.categories {
        if !selected(gp.name) {
            continue;
        }
        let spec = spec_by_name
            .get(gp.name)
            .unwrap_or_else(|| panic!("profile {} has no catalog entry", gp.name));
        let mut rng = RngStream::derived(seed, &format!("{system}/{}", gp.name));
        let (times, probabilistic) =
            failure_arrivals(gp, spec, scale, start, span, &failure_times, &mut rng);
        if times.is_empty() {
            failure_times.insert(gp.name, times);
            continue;
        }
        let n_failures = times.len() as u64;
        let target_raw = (spec.raw_count as f64 * scale.alerts).max(1.0);
        // Probabilistically-present categories carry their *unscaled*
        // per-failure burst (raw/filtered), so the expected raw volume
        // stays `raw × scale`; calibrated categories split the scaled
        // raw target across their failures.
        let mean_burst = if probabilistic {
            (spec.raw_count as f64 / spec.filtered_count as f64).max(1.0)
        } else {
            (target_raw / n_failures as f64).max(1.0)
        };

        for &t0 in &times {
            failure_counter += 1;
            let fid = FailureId(failure_counter);
            let burst_nodes = pick_nodes(gp, &nodes, &mut rng);
            let len = sample_burst_len(mean_burst, &mut rng);
            let mut t = t0;
            for k in 0..len {
                if k > 0 {
                    t += Duration::from_secs_f64(rng.exponential(1.0 / gp.burst_gap_secs));
                }
                if profile.loss_prob > 0.0 && rng.chance(profile.loss_prob) {
                    lost += 1;
                    continue;
                }
                let node = burst_nodes[(k as usize) % burst_nodes.len()];
                let msg = alert_message(system, spec, t, node, &nodes, &mut rng, &interner);
                pending.push(PendingMessage {
                    msg,
                    truth: Some(fid),
                    category: Some(spec.name),
                    seq,
                });
                seq += 1;
            }
        }
        failure_times.insert(gp.name, times);
    }

    // ---- Background traffic ----------------------------------------
    {
        let sampler = BackgroundSampler::new(profile, &nodes);
        let mut rng = RngStream::derived(seed, &format!("{system}/background"));
        let n_bg = (profile.background_total as f64 * scale.background)
            .round()
            .max(8.0) as u64;
        let mut filler = |key: &str, r: &mut RngStream| placeholder(key, &nodes, &interner, r);
        for _ in 0..n_bg {
            if profile.loss_prob > 0.0 && rng.chance(profile.loss_prob) {
                lost += 1;
                continue;
            }
            let msg = sampler.sample_message(&mut rng, &mut filler);
            pending.push(PendingMessage {
                msg,
                truth: None,
                category: None,
                seq,
            });
            seq += 1;
        }
    }

    // ---- Corruption --------------------------------------------------
    let mut corrupted: u64 = 0;
    {
        let mut rng = RngStream::derived(seed, &format!("{system}/corruption"));
        let n = pending.len();
        if n > 1 && profile.corrupt_prob > 0.0 {
            let expected = (n as f64 * profile.corrupt_prob).round() as u64;
            for _ in 0..expected {
                let i = rng.below(n as u64) as usize;
                let j = rng.below(n as u64) as usize;
                let other_body = pending[j].msg.body.clone();
                let kind = corrupt(&mut pending[i].msg, &other_body, &mut interner, &mut rng);
                let _ = kind;
                corrupted += 1;
            }
        }
    }

    // ---- Sort, run the collection path, and freeze --------------------
    pending.sort_by_key(|p| (p.msg.time, p.seq));
    let mut collector = (profile.collector_rate > 0.0).then(|| {
        crate::collector::Collector::new(profile.collector_rate, profile.collector_rate * 10.0)
    });
    let mut messages = Vec::with_capacity(pending.len());
    let mut truth = Vec::with_capacity(pending.len());
    let mut truth_category = Vec::with_capacity(pending.len());
    for p in pending {
        // Contention loss: the token-bucket collector drops messages
        // when overlapping storms exceed its drain rate.
        if let Some(c) = collector.as_mut() {
            if !c.offer(p.msg.time) {
                lost += 1;
                continue;
            }
        }
        messages.push(p.msg);
        truth.push(p.truth);
        truth_category.push(p.category);
    }

    GenLog {
        system,
        messages,
        truth,
        truth_category,
        interner,
        failure_count: failure_counter,
        lost_messages: lost,
        corrupted_messages: corrupted,
        scale,
    }
}

/// Generates the failure arrival times for one category; the second
/// element reports whether the probabilistic-presence regime applied.
fn failure_arrivals(
    gp: &GenProfile,
    spec: &CategorySpec,
    scale: Scale,
    start: Timestamp,
    span: f64,
    earlier: &HashMap<&str, Vec<Timestamp>>,
    rng: &mut RngStream,
) -> (Vec<Timestamp>, bool) {
    // Two regimes, one per fidelity requirement:
    //
    // * Calibration-critical categories (either expected failures
    //   ≥ 0.5, or a large expected raw volume — the disk storms, whose
    //   handful of failures carry most of a system's messages) are
    //   clamped to at least one failure so per-run raw totals track
    //   `raw_count × scale` tightly.
    // * Tiny categories (the BG/L "31 Others" at small scales) appear
    //   *probabilistically* instead: clamping dozens of sub-unity
    //   categories to one failure each would visibly distort the
    //   filtered type mix of Table 3. Rare events genuinely may not
    //   occur in a short observation window.
    let target = spec.filtered_count as f64 * scale.alerts;
    let target_raw = spec.raw_count as f64 * scale.alerts;
    let probabilistic = target < 0.5 && target_raw < 100.0;
    let n = if probabilistic {
        usize::from(rng.chance(target))
    } else {
        (target.round() as usize).max(1)
    };
    if n == 0 {
        return (Vec::new(), probabilistic);
    }
    let w_start = start + Duration::from_secs_f64(gp.window.0 * span);
    let w_len = (gp.window.1 - gp.window.0) * span;

    let mut times: Vec<Timestamp> = Vec::with_capacity(n);
    // Cascade-linked share first.
    let mut remaining = n;
    if let Some(link) = gp.link {
        if let Some(targets) = earlier.get(link.to) {
            if !targets.is_empty() {
                let n_linked = ((n as f64 * link.prob).round() as usize).min(n);
                for _ in 0..n_linked {
                    let t = targets[rng.below(targets.len() as u64) as usize];
                    times.push(t + Duration::from_secs_f64(rng.exponential(1.0 / link.lag_secs)));
                }
                remaining = n - n_linked;
            }
        }
    }
    // Independent share.
    match gp.arrival {
        Arrival::Exponential => {
            // Conditioned on the count, Poisson arrivals are iid
            // uniform over the window.
            for _ in 0..remaining {
                times.push(w_start + Duration::from_secs_f64(rng.uniform() * w_len));
            }
        }
        Arrival::LogNormal { sigma } => {
            // Renewal gaps rescaled to fill the window exactly: keeps
            // the clustering shape and the calibrated count.
            let mut gaps: Vec<f64> = (0..=remaining).map(|_| rng.lognormal(0.0, sigma)).collect();
            let total: f64 = gaps.iter().sum();
            let mut acc = 0.0;
            for g in gaps.iter_mut().take(remaining) {
                acc += *g;
                times.push(w_start + Duration::from_secs_f64(acc / total * w_len));
            }
        }
    }
    times.sort_unstable();
    (times, probabilistic)
}

/// Chooses the node set one failure's burst round-robins across.
fn pick_nodes(gp: &GenProfile, nodes: &NodeSet, rng: &mut RngStream) -> Vec<NodeId> {
    if let Some((hot_idx, frac)) = gp.hotspot {
        if rng.chance(frac) {
            return vec![nodes.hotspots[hot_idx.min(nodes.hotspots.len() - 1)]];
        }
    }
    let n = nodes.compute.len();
    if let Some(group) = gp.correlated_group {
        // A contiguous block of nodes, like a job partition.
        let size = (group as usize).clamp(1, n);
        let base = rng.below((n - size + 1) as u64) as usize;
        return nodes.compute[base..base + size].to_vec();
    }
    let spread = (gp.spread as usize).clamp(1, n);
    let mut out = Vec::with_capacity(spread);
    for _ in 0..spread {
        out.push(nodes.compute[rng.below(n as u64) as usize]);
    }
    out
}

/// Samples one burst's message count with the given mean (≥ 1).
///
/// Small bursts are geometric (memoryless repetition, like the PBS
/// bug's up-to-74 task_check messages). Large bursts — the disk storms
/// with six-figure means — use a concentrated log-normal instead: a
/// geometric's standard deviation equals its mean, and with only a
/// handful of storm failures per run a single heavy draw would blow the
/// calibrated raw totals.
fn sample_burst_len(mean: f64, rng: &mut RngStream) -> u64 {
    if mean <= 1.0 {
        1
    } else if mean <= 30.0 {
        1 + rng.geometric(1.0 / mean)
    } else {
        // Tighter spread for the huge bursts: with only one or two
        // such failures per run, their draw IS the system's raw alert
        // total.
        let sigma = if mean > 1e3 { 0.1 } else { 0.25 };
        let mu = mean.ln() - sigma * sigma / 2.0;
        rng.lognormal(mu, sigma).round().max(1.0) as u64
    }
}

/// Builds one alert message from its category spec.
fn alert_message(
    system: SystemId,
    spec: &CategorySpec,
    t: Timestamp,
    node: NodeId,
    nodes: &NodeSet,
    rng: &mut RngStream,
    interner: &SourceInterner,
) -> Message {
    let time = if system == SystemId::BlueGeneL {
        t + Duration::from_micros(rng.below(1000) as i64)
    } else {
        t.truncate_to_secs()
    };
    let severity = match spec.severity {
        CatSeverity::None => Severity::None,
        CatSeverity::Bgl(s) => Severity::Bgl(s),
        CatSeverity::Syslog(s) => Severity::Syslog(s),
    };
    let mut filler = |key: &str| placeholder_at(key, nodes, interner, rng, time);
    let facility = fill_template(spec.facility, &mut filler);
    let body = fill_template(spec.template, &mut filler);
    Message {
        system,
        time,
        source: node,
        facility,
        severity,
        body,
    }
}

/// Random placeholder values for message templates.
fn placeholder(
    key: &str,
    nodes: &NodeSet,
    interner: &SourceInterner,
    rng: &mut RngStream,
) -> String {
    placeholder_at(
        key,
        nodes,
        interner,
        rng,
        Timestamp::from_secs(1_140_000_000),
    )
}

fn placeholder_at(
    key: &str,
    nodes: &NodeSet,
    interner: &SourceInterner,
    rng: &mut RngStream,
    time: Timestamp,
) -> String {
    match key {
        "num" => rng.below(10_000).to_string(),
        "job" => (1000 + rng.below(90_000)).to_string(),
        "hex" => format!("{:#018x}", rng.below(u64::MAX / 2)),
        "ip" => format!(
            "10.{}.{}.{}:{}",
            rng.below(4),
            rng.below(256),
            rng.below(256),
            1024 + rng.below(60_000)
        ),
        "path" => [
            "/usr/src/mapper",
            "/p/gb1/scratch",
            "/var/spool/pbs",
            "/opt/gm/drivers",
        ][rng.below(4) as usize]
            .to_owned(),
        "dev" => format!(
            "sd{}{}",
            (b'a' + rng.below(8) as u8) as char,
            1 + rng.below(8)
        ),
        "time" => time.as_secs().to_string(),
        "node" => {
            let i = rng.below(nodes.compute.len() as u64) as usize;
            // Red Storm event bodies reference cabinet coordinates, not
            // hostnames.
            if interner.name(nodes.compute[i]).starts_with("nid") {
                NodeSet::rs_component_name(i)
            } else {
                interner.name(nodes.compute[i]).to_owned()
            }
        }
        other => format!("<{other}>"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(system: SystemId) -> GenLog {
        // Spirit has 172.8M raw alerts at scale 1; keep tests snappy.
        generate(system, Scale::new(0.002, 0.0002), 99)
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small(SystemId::Liberty);
        let b = small(SystemId::Liberty);
        assert_eq!(a.messages, b.messages);
        assert_eq!(a.truth, b.truth);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(SystemId::Liberty, Scale::tiny(), 1);
        let b = generate(SystemId::Liberty, Scale::tiny(), 2);
        assert_ne!(a.messages, b.messages);
    }

    #[test]
    fn messages_are_time_sorted() {
        for &sys in &sclog_types::ALL_SYSTEMS {
            let log = small(sys);
            assert!(
                log.messages.windows(2).all(|w| w[0].time <= w[1].time),
                "{sys} not sorted"
            );
        }
    }

    #[test]
    fn truth_arrays_are_parallel() {
        let log = small(SystemId::Spirit);
        assert_eq!(log.messages.len(), log.truth.len());
        assert_eq!(log.messages.len(), log.truth_category.len());
        // Truth and category are present or absent together.
        for (t, c) in log.truth.iter().zip(&log.truth_category) {
            assert_eq!(t.is_some(), c.is_some());
        }
    }

    #[test]
    fn all_windows_respected() {
        for &sys in &sclog_types::ALL_SYSTEMS {
            let log = small(sys);
            let spec = sys.spec();
            // Corrupted timestamps may stray up to a day past the ends.
            let lo = spec.start() - Duration::from_days(2);
            let hi = spec.end() + Duration::from_days(2);
            for m in &log.messages {
                assert!(
                    m.time >= lo && m.time < hi,
                    "{sys}: {} out of window",
                    m.time
                );
            }
        }
    }

    #[test]
    fn alert_counts_scale_roughly() {
        // At 2% alert scale, raw Liberty alert messages ≈ 2452 × 0.02.
        let log = generate(SystemId::Liberty, Scale::new(0.02, 0.0001), 7);
        let alerts = log.truth.iter().filter(|t| t.is_some()).count() as f64;
        let expect = 2452.0 * 0.02;
        assert!(
            (alerts - expect).abs() / expect < 0.6,
            "alerts {alerts} vs expected {expect}"
        );
    }

    #[test]
    fn failure_count_tracks_filtered_totals() {
        let log = generate(SystemId::Liberty, Scale::new(0.1, 0.0001), 3);
        // Liberty filtered total = 1050; at 10% ≈ 105 (some categories
        // clamp at 1).
        let f = log.failure_count as f64;
        assert!((60.0..200.0).contains(&f), "failures {f}");
    }

    #[test]
    fn spirit_hotspot_routing() {
        // The EXT_CCISS profile routes ~65% of failures to sn373; with
        // only a handful of storms per run the aggregate share is a
        // coin flip, so test the routing mechanism over many draws.
        let mut interner = SourceInterner::new();
        let nodes = NodeSet::build(SystemId::Spirit, &mut interner);
        let gp = crate::profiles::system_profile(SystemId::Spirit)
            .categories
            .iter()
            .find(|p| p.name == "EXT_CCISS")
            .expect("profile exists");
        let mut rng = RngStream::from_seed(11);
        let hot = nodes.hotspots[0];
        let hits = (0..2000)
            .filter(|_| pick_nodes(gp, &nodes, &mut rng) == vec![hot])
            .count();
        let frac = hits as f64 / 2000.0;
        assert!((frac - 0.65).abs() < 0.05, "hotspot fraction {frac}");
    }

    #[test]
    fn spirit_storm_is_concentrated() {
        // When a storm does land on the hotspot, that node dominates
        // the category's message volume (the sn373 phenomenon). Seed
        // chosen so the storm rolls the hotspot.
        for seed in 0..20u64 {
            let log = generate_categories(
                SystemId::Spirit,
                Scale::new(0.002, 0.0001),
                seed,
                Some(&["EXT_CCISS"]),
            );
            let hot = log.interner.get("sn373").expect("interned");
            let alert_msgs = log.truth.iter().filter(|t| t.is_some()).count();
            if alert_msgs == 0 {
                continue;
            }
            let from_hot = log
                .messages
                .iter()
                .zip(&log.truth)
                .filter(|(m, t)| t.is_some() && m.source == hot)
                .count();
            if from_hot > 0 {
                assert!(
                    from_hot * 2 >= alert_msgs,
                    "seed {seed}: hotspot storm not concentrated: {from_hot}/{alert_msgs}"
                );
                return;
            }
        }
        panic!("no seed in 0..20 produced a hotspot storm");
    }

    #[test]
    fn bgl_alert_severities_are_fatal_dominated() {
        let log = generate(SystemId::BlueGeneL, Scale::new(0.05, 0.0005), 5);
        let mut fatal = 0;
        let mut other = 0;
        for (m, t) in log.messages.iter().zip(&log.truth) {
            if t.is_some() {
                match m.severity {
                    Severity::Bgl(sclog_types::BglSeverity::Fatal) => fatal += 1,
                    _ => other += 1,
                }
            }
        }
        assert!(fatal > 20 * other.max(1), "fatal {fatal} other {other}");
    }

    #[test]
    fn render_round_trips_through_reader() {
        let log = generate(SystemId::Liberty, Scale::new(0.05, 0.0002), 13);
        let text = log.render();
        let mut reader = sclog_parse::LogReader::for_system(SystemId::Liberty);
        reader.push_text(&text);
        let stats = reader.stats();
        // Nearly everything parses; corruption may reject a few.
        assert!(stats.parsed as f64 >= 0.99 * log.messages.len() as f64);
        assert!(stats.total() == log.messages.len() as u64);
    }

    #[test]
    fn lossy_systems_lose_messages() {
        let log = generate(SystemId::Spirit, Scale::new(0.002, 0.001), 17);
        assert!(log.lost_messages > 0);
        let bgl = generate(SystemId::BlueGeneL, Scale::new(0.01, 0.001), 17);
        assert_eq!(bgl.lost_messages, 0, "BG/L path is reliable");
    }

    #[test]
    fn corruption_happens_at_profile_rate() {
        let log = generate(SystemId::Thunderbird, Scale::new(0.01, 0.0005), 19);
        assert!(log.corrupted_messages > 0);
        let frac = log.corrupted_messages as f64 / log.messages.len() as f64;
        assert!(frac < 0.01, "corruption fraction too high: {frac}");
    }

    #[test]
    #[should_panic(expected = "lower it")]
    fn oversized_scale_panics() {
        let _ = generate(SystemId::Spirit, Scale::uniform(1.0), 1);
    }

    #[test]
    fn write_to_matches_render() {
        let log = small(SystemId::Liberty);
        let mut buf = Vec::new();
        let n = log.write_to(&mut buf).expect("in-memory write");
        assert_eq!(buf, log.render().into_bytes());
        assert_eq!(n as usize, buf.len());
        assert_eq!(n, log.rendered_bytes());
    }

    #[test]
    fn rendered_bytes_positive_and_plausible() {
        let log = small(SystemId::Liberty);
        let bytes = log.rendered_bytes();
        assert!(bytes as usize > log.messages.len() * 40);
        assert!(!log.is_empty());
        assert_eq!(log.render().lines().count(), log.len());
    }
}
