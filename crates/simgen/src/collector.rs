//! The syslog collection path as a queueing model.
//!
//! Section 3.1: "As is standard syslog practice, the UDP protocol is
//! used for transmission, resulting in some messages being lost during
//! network contention." Loss is therefore *not* uniform: it
//! concentrates exactly where the log is busiest — during the message
//! storms — which is also when administrators most need the data.
//!
//! The collector is modeled as a token bucket: it drains `rate`
//! messages per second with burst capacity `burst`; an arrival finding
//! the bucket empty is dropped. The generator sizes `rate` as a
//! multiple of the system's mean message rate, so steady-state loss is
//! negligible and storm-time loss is real.

use sclog_types::Timestamp;

/// Token-bucket collector: decides which messages survive the UDP hop.
#[derive(Debug, Clone)]
pub struct Collector {
    rate: f64,
    burst: f64,
    tokens: f64,
    last: Option<Timestamp>,
    dropped: u64,
    passed: u64,
}

impl Collector {
    /// Creates a collector draining `rate` messages/second with burst
    /// capacity `burst` (starts full).
    ///
    /// # Panics
    ///
    /// Panics if `rate` or `burst` is not positive.
    pub fn new(rate: f64, burst: f64) -> Self {
        assert!(rate > 0.0, "rate must be positive");
        assert!(burst >= 1.0, "burst must be at least 1");
        Collector {
            rate,
            burst,
            tokens: burst,
            last: None,
            dropped: 0,
            passed: 0,
        }
    }

    /// Offers a message arriving at `t` (arrivals must be time-sorted);
    /// returns `true` if it survives the collection path.
    ///
    /// # Panics
    ///
    /// Panics in debug builds on out-of-order arrivals.
    pub fn offer(&mut self, t: Timestamp) -> bool {
        if let Some(last) = self.last {
            debug_assert!(t >= last, "collector arrivals must be sorted");
            let dt = (t - last).as_secs_f64();
            self.tokens = (self.tokens + dt * self.rate).min(self.burst);
        }
        self.last = Some(t);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            self.passed += 1;
            true
        } else {
            self.dropped += 1;
            false
        }
    }

    /// Messages dropped so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Messages passed so far.
    pub fn passed(&self) -> u64 {
        self.passed
    }

    /// Overall loss fraction so far.
    pub fn loss_fraction(&self) -> f64 {
        let total = self.dropped + self.passed;
        if total == 0 {
            0.0
        } else {
            self.dropped as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sclog_types::Duration;

    #[test]
    fn steady_traffic_below_rate_never_drops() {
        let mut c = Collector::new(10.0, 50.0);
        let mut t = Timestamp::EPOCH;
        for _ in 0..1000 {
            t += Duration::from_millis(200); // 5 msg/s < 10 msg/s
            assert!(c.offer(t));
        }
        assert_eq!(c.dropped(), 0);
        assert_eq!(c.loss_fraction(), 0.0);
    }

    #[test]
    fn storms_overflow_the_bucket() {
        let mut c = Collector::new(10.0, 20.0);
        let mut t = Timestamp::EPOCH;
        // A storm: 1000 messages in one second (100x the drain rate).
        let mut survived = 0;
        for _ in 0..1000 {
            t += Duration::from_millis(1);
            if c.offer(t) {
                survived += 1;
            }
        }
        // Roughly burst + rate*1s survive.
        assert!((25..=45).contains(&survived), "survived {survived}");
        assert!(c.loss_fraction() > 0.9);
    }

    #[test]
    fn bucket_refills_after_quiet() {
        let mut c = Collector::new(10.0, 5.0);
        let mut t = Timestamp::EPOCH;
        // Exhaust the bucket.
        for _ in 0..10 {
            c.offer(t);
        }
        assert!(c.dropped() > 0);
        // A long quiet period refills it.
        t += Duration::from_secs(60);
        assert!(c.offer(t));
        let dropped_before = c.dropped();
        for i in 1..5 {
            assert!(c.offer(t + Duration::from_millis(i * 200)));
        }
        assert_eq!(c.dropped(), dropped_before);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_rejected() {
        let _ = Collector::new(0.0, 1.0);
    }
}
