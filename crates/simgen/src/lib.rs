//! Calibrated synthetic log generator for the five studied
//! supercomputers.
//!
//! The paper's raw logs (111.67 GB, ~1 billion messages) are not
//! publicly available; this crate is the substitution documented in
//! DESIGN.md. It generates, per system, a message stream whose
//! statistical structure matches what the paper reports:
//!
//! * per-category raw and filtered alert counts (Table 4), scaled by a
//!   configurable factor;
//! * total message volume and the severity mixes of Tables 5 and 6;
//! * redundancy structure — temporal chains, round-robin spatial
//!   spread, hotspot nodes (Spirit's `sn373`, the Thunderbird VAPI
//!   node), cascades between categories (Figure 3), and spatially
//!   correlated episodes (the SMP clock bug);
//! * collection-path artifacts — UDP syslog loss, message corruption,
//!   second- vs microsecond-granular timestamps;
//! * regime shifts in background traffic (Figure 2a's OS upgrade);
//! * **ground truth**: every alert message carries the [`FailureId`] of
//!   the failure that caused it, enabling exact filter scoring.
//!
//! # Examples
//!
//! ```
//! use sclog_simgen::{generate, Scale};
//! use sclog_types::SystemId;
//!
//! let log = generate(SystemId::Liberty, Scale::new(1.0, 1e-4), 42);
//! assert!(log.messages.len() > 100);
//! // Deterministic: same seed, same log.
//! let again = generate(SystemId::Liberty, Scale::new(1.0, 1e-4), 42);
//! assert_eq!(log.messages.len(), again.messages.len());
//! ```
//!
//! [`FailureId`]: sclog_types::FailureId

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod background;
pub mod collector;
mod corruption;
mod generator;
mod nodes;
pub mod profiles;
mod stream;

pub use generator::{generate, generate_categories, GenLog};
pub use profiles::{system_profile, Arrival, GenProfile, Link, SystemProfile};
pub use stream::{generate_stream, GenChunk, GenStream};

/// Scale factors applied to the paper's calibrated counts.
///
/// Alert counts and background message counts scale independently:
/// figure-level analyses want every alert at full fidelity but only
/// enough background to exercise the pipeline, while Table 2
/// reproduction wants both scaled equally.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scale {
    /// Multiplier on failure/alert counts (1.0 = the paper's counts).
    pub alerts: f64,
    /// Multiplier on background (non-alert) message counts.
    pub background: f64,
}

impl Scale {
    /// Creates a scale; both factors must be in `(0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if either factor is outside `(0, 1]`.
    pub fn new(alerts: f64, background: f64) -> Self {
        assert!(
            alerts > 0.0 && alerts <= 1.0,
            "alert scale must be in (0,1]"
        );
        assert!(
            background > 0.0 && background <= 1.0,
            "background scale must be in (0,1]"
        );
        Scale { alerts, background }
    }

    /// Uniform scale for both alerts and background.
    pub fn uniform(s: f64) -> Self {
        Scale::new(s, s)
    }

    /// A small scale suitable for unit tests (full Liberty alert detail
    /// would be overkill there).
    pub fn tiny() -> Self {
        Scale::new(0.01, 0.0001)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_constructors() {
        let s = Scale::uniform(0.5);
        assert_eq!(s.alerts, 0.5);
        assert_eq!(s.background, 0.5);
        let t = Scale::tiny();
        assert!(t.alerts > 0.0 && t.background > 0.0);
    }

    #[test]
    #[should_panic(expected = "alert scale")]
    fn zero_scale_rejected() {
        let _ = Scale::new(0.0, 0.1);
    }

    #[test]
    #[should_panic(expected = "background scale")]
    fn oversized_scale_rejected() {
        let _ = Scale::new(0.5, 1.5);
    }
}
