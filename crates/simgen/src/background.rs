//! Background (non-alert) traffic generation.

use crate::nodes::NodeSet;
use crate::profiles::{SystemProfile, RSTORM_EVENT_TEMPLATES};
use sclog_desim::RngStream;
use sclog_types::{BglSeverity, Message, NodeId, Severity, SyslogSeverity, SystemId, Timestamp};

/// Precomputed sampling state for background traffic.
pub struct BackgroundSampler<'a> {
    profile: &'a SystemProfile,
    nodes: &'a NodeSet,
    /// Cumulative weights over rate regimes (per-regime mass =
    /// duration × rate).
    regime_cum: Vec<f64>,
    /// Regime boundaries as fractions of the span, including 1.0.
    regime_bounds: Vec<f64>,
    /// Cumulative Zipf weights over compute nodes.
    zipf_cum: Vec<f64>,
    /// Cumulative severity weights.
    severity_cum: Vec<(f64, Severity)>,
    start: Timestamp,
    span_secs: f64,
}

impl<'a> BackgroundSampler<'a> {
    /// Builds the sampler for a system profile.
    pub fn new(profile: &'a SystemProfile, nodes: &'a NodeSet) -> Self {
        let spec = profile.system.spec();
        let span_secs = spec.span().as_secs_f64();
        // Regime bounds and masses.
        let mut regime_bounds: Vec<f64> = profile
            .rate_regimes
            .iter()
            .map(|&(f, _)| f)
            .skip(1)
            .collect();
        regime_bounds.push(1.0);
        let mut regime_cum = Vec::with_capacity(profile.rate_regimes.len());
        let mut acc = 0.0;
        for (i, &(start_f, rate)) in profile.rate_regimes.iter().enumerate() {
            let end_f = regime_bounds[i];
            acc += (end_f - start_f) * rate;
            regime_cum.push(acc);
        }
        // Zipf over compute nodes.
        let mut zipf_cum = Vec::with_capacity(nodes.compute.len());
        let mut zacc = 0.0;
        for i in 0..nodes.compute.len() {
            zacc += 1.0 / ((i + 1) as f64).powf(profile.zipf);
            zipf_cum.push(zacc);
        }
        // Severity mix.
        let mut severity_cum = Vec::new();
        let mut sacc = 0.0;
        for &(name, count) in profile.bg_severity {
            sacc += count as f64;
            let sev = parse_severity(profile.system, name);
            severity_cum.push((sacc, sev));
        }
        BackgroundSampler {
            profile,
            nodes,
            regime_cum,
            regime_bounds,
            zipf_cum,
            severity_cum,
            start: spec.start(),
            span_secs,
        }
    }

    /// Samples a message timestamp according to the rate regimes.
    pub fn sample_time(&self, rng: &mut RngStream) -> Timestamp {
        let total = *self.regime_cum.last().expect("at least one regime");
        let x = rng.uniform() * total;
        let idx = self.regime_cum.partition_point(|&c| c < x);
        let idx = idx.min(self.regime_cum.len() - 1);
        let start_f = self.profile.rate_regimes[idx].0;
        let end_f = self.regime_bounds[idx];
        let f = start_f + rng.uniform() * (end_f - start_f);
        self.start + sclog_types::Duration::from_secs_f64(f * self.span_secs)
    }

    /// Samples an emitting node: admin nodes with probability
    /// `admin_frac`, otherwise Zipf-weighted compute nodes.
    pub fn sample_node(&self, rng: &mut RngStream) -> NodeId {
        if rng.chance(self.profile.admin_frac) {
            self.nodes.admin[rng.below(self.nodes.admin.len() as u64) as usize]
        } else {
            let total = *self.zipf_cum.last().expect("nodes exist");
            let x = rng.uniform() * total;
            let idx = self.zipf_cum.partition_point(|&c| c < x);
            self.nodes.compute[idx.min(self.nodes.compute.len() - 1)]
        }
    }

    /// Samples a severity from the background mix ([`Severity::None`]
    /// when the system records none).
    pub fn sample_severity(&self, rng: &mut RngStream) -> Severity {
        if self.severity_cum.is_empty() {
            return Severity::None;
        }
        let total = self.severity_cum.last().expect("non-empty").0;
        let x = rng.uniform() * total;
        let idx = self.severity_cum.partition_point(|&(c, _)| c < x);
        self.severity_cum[idx.min(self.severity_cum.len() - 1)].1
    }

    /// Generates one background message.
    pub fn sample_message(
        &self,
        rng: &mut RngStream,
        filler: &mut impl FnMut(&str, &mut RngStream) -> String,
    ) -> Message {
        let system = self.profile.system;
        let event_path = system == SystemId::RedStorm && rng.chance(self.profile.bg_event_frac);
        let templates = if event_path {
            RSTORM_EVENT_TEMPLATES
        } else {
            self.profile.bg_templates
        };
        let (facility_t, body_t) = templates[rng.below(templates.len() as u64) as usize];
        let time = self.sample_time(rng);
        let time = if system == SystemId::BlueGeneL {
            // Microsecond jitter: BG/L's polling granularity.
            time + sclog_types::Duration::from_micros(rng.below(1_000_000) as i64)
        } else {
            time.truncate_to_secs()
        };
        let severity = if event_path {
            Severity::None // the TCP path has no severity analog
        } else {
            self.sample_severity(rng)
        };
        Message {
            system,
            time,
            source: self.sample_node(rng),
            facility: sclog_rules::catalog::fill_template(facility_t, |k| filler(k, rng)),
            severity,
            body: sclog_rules::catalog::fill_template(body_t, |k| filler(k, rng)),
        }
    }
}

fn parse_severity(system: SystemId, name: &str) -> Severity {
    match system {
        SystemId::BlueGeneL => Severity::Bgl(
            name.parse::<BglSeverity>()
                .expect("valid BG/L severity name"),
        ),
        _ => Severity::Syslog(
            name.parse::<SyslogSeverity>()
                .expect("valid syslog severity name"),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::system_profile;
    use sclog_types::SourceInterner;

    fn filler(key: &str, _rng: &mut RngStream) -> String {
        sclog_rules::catalog::example_value(key)
    }

    #[test]
    fn times_respect_window() {
        let profile = system_profile(SystemId::Liberty);
        let mut interner = SourceInterner::new();
        let nodes = NodeSet::build(SystemId::Liberty, &mut interner);
        let sampler = BackgroundSampler::new(profile, &nodes);
        let spec = SystemId::Liberty.spec();
        let mut rng = RngStream::from_seed(1);
        for _ in 0..1000 {
            let t = sampler.sample_time(&mut rng);
            assert!(t >= spec.start() && t < spec.end());
        }
    }

    #[test]
    fn liberty_regime_shift_shows_in_rates() {
        // After the OS upgrade (35% of span) the rate triples: count
        // messages on each side of the boundary.
        let profile = system_profile(SystemId::Liberty);
        let mut interner = SourceInterner::new();
        let nodes = NodeSet::build(SystemId::Liberty, &mut interner);
        let sampler = BackgroundSampler::new(profile, &nodes);
        let spec = SystemId::Liberty.spec();
        let boundary =
            spec.start() + sclog_types::Duration::from_secs_f64(0.35 * spec.span().as_secs_f64());
        let mut rng = RngStream::from_seed(2);
        let mut before = 0.0;
        let mut after = 0.0;
        for _ in 0..20_000 {
            if sampler.sample_time(&mut rng) < boundary {
                before += 1.0;
            } else {
                after += 1.0;
            }
        }
        // Rate density: before = n_before/0.35, after = n_after/0.65.
        let ratio = (after / 0.65) / (before / 0.35);
        assert!(
            ratio > 1.8,
            "post-upgrade rate should be much higher: {ratio}"
        );
    }

    #[test]
    fn bgl_severity_mix_is_respected() {
        let profile = system_profile(SystemId::BlueGeneL);
        let mut interner = SourceInterner::new();
        let nodes = NodeSet::build(SystemId::BlueGeneL, &mut interner);
        let sampler = BackgroundSampler::new(profile, &nodes);
        let mut rng = RngStream::from_seed(3);
        let mut info = 0;
        let mut fatal = 0;
        const N: usize = 20_000;
        for _ in 0..N {
            match sampler.sample_severity(&mut rng) {
                Severity::Bgl(BglSeverity::Info) => info += 1,
                Severity::Bgl(BglSeverity::Fatal) => fatal += 1,
                _ => {}
            }
        }
        // Expected: INFO ≈ 84.9%, FATAL ≈ 11.5% of background.
        assert!((info as f64 / N as f64 - 0.849).abs() < 0.02, "info {info}");
        assert!(
            (fatal as f64 / N as f64 - 0.115).abs() < 0.02,
            "fatal {fatal}"
        );
    }

    #[test]
    fn redstorm_event_path_share() {
        let profile = system_profile(SystemId::RedStorm);
        let mut interner = SourceInterner::new();
        let nodes = NodeSet::build(SystemId::RedStorm, &mut interner);
        let sampler = BackgroundSampler::new(profile, &nodes);
        let mut rng = RngStream::from_seed(4);
        let mut f = |k: &str, r: &mut RngStream| filler(k, r);
        let mut event = 0;
        const N: usize = 5000;
        for _ in 0..N {
            let m = sampler.sample_message(&mut rng, &mut f);
            if m.facility.starts_with("ec_") {
                event += 1;
                assert_eq!(m.severity, Severity::None);
            }
        }
        let frac = event as f64 / N as f64;
        assert!((frac - 0.89).abs() < 0.03, "event share {frac}");
    }

    #[test]
    fn admin_nodes_receive_their_share() {
        let profile = system_profile(SystemId::Liberty);
        let mut interner = SourceInterner::new();
        let nodes = NodeSet::build(SystemId::Liberty, &mut interner);
        let sampler = BackgroundSampler::new(profile, &nodes);
        let mut rng = RngStream::from_seed(5);
        let admin: std::collections::HashSet<_> = nodes.admin.iter().copied().collect();
        let hits = (0..10_000)
            .filter(|_| admin.contains(&sampler.sample_node(&mut rng)))
            .count();
        assert!((hits as f64 / 10_000.0 - profile.admin_frac).abs() < 0.03);
    }

    #[test]
    fn syslog_systems_have_second_granularity() {
        let profile = system_profile(SystemId::Spirit);
        let mut interner = SourceInterner::new();
        let nodes = NodeSet::build(SystemId::Spirit, &mut interner);
        let sampler = BackgroundSampler::new(profile, &nodes);
        let mut rng = RngStream::from_seed(6);
        let mut f = |k: &str, r: &mut RngStream| filler(k, r);
        for _ in 0..100 {
            let m = sampler.sample_message(&mut rng, &mut f);
            assert_eq!(m.time.subsec_micros(), 0);
        }
    }
}
