//! Model-check harnesses over the workspace's hand-rolled sync
//! protocols.
//!
//! This crate is the consumer of `sclog-sync`'s checker: the
//! [`protocols`] module drives the *real* production protocols — the
//! bounded channel behind the streaming pipeline, the [`TagPool`]
//! job/result queues, the recorder's shard registration, the
//! in-flight gauge's permit accounting, the sclogd accept/shutdown
//! handshake, and the timeline sampler's stop handshake — and the
//! `#[cfg(sclog_model)]` tests
//! explore every schedule of each driver under a preemption bound,
//! asserting no deadlock, no lost wakeup, no message loss or
//! duplication, and the capacity/permit bounds on every interleaving.
//!
//! The mutation tests then prove the checker has teeth: each seeded
//! bug shape (`sclog_sync::model::mutation` sites in the protocol
//! sources, including the historical PR 6 close-while-blocked bug)
//! must produce a counterexample.
//!
//! Run via `scripts/verify.sh --model-check`, which builds the
//! workspace with `RUSTFLAGS="--cfg sclog_model"` into a separate
//! target directory. In a normal build the same drivers compile
//! against plain `std::sync` and run natively once — keeping the
//! harness code itself inside the tier-1 test net.
//!
//! [`TagPool`]: sclog_rules::TagPool

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod protocols;

#[cfg(test)]
mod fixtures {
    use sclog_rules::RuleSet;
    use sclog_types::{CategoryRegistry, SystemId};

    /// A real builtin ruleset for pool harnesses. Built once per call
    /// (outside any checked closure — the ruleset is immutable shared
    /// data, not a sync object, so reuse across schedules is fine).
    pub fn rules() -> RuleSet {
        let mut registry = CategoryRegistry::new();
        RuleSet::builtin(SystemId::Liberty, &mut registry)
    }
}

/// Native (normal-build) smoke tests: every driver must also be a
/// correct concurrent program on real threads. This is what keeps the
/// harnesses honest in tier-1 builds, where the facade is plain
/// `std::sync`.
#[cfg(all(test, not(sclog_model)))]
mod native_tests {
    use super::{fixtures, protocols};

    #[test]
    fn channel_no_loss_runs_natively() {
        protocols::channel_no_loss(2, 2, 2);
    }

    #[test]
    fn channel_close_while_blocked_runs_natively() {
        protocols::channel_close_while_blocked();
    }

    #[test]
    fn channel_ping_pong_runs_natively() {
        protocols::channel_ping_pong(3);
    }

    #[test]
    fn gauge_permit_protocol_runs_natively() {
        protocols::gauge_permit_protocol(2, 4);
    }

    #[test]
    fn tagpool_close_drain_runs_natively() {
        let rules = fixtures::rules();
        protocols::tagpool_close_drain(&rules, 2, 2, 3);
    }

    #[test]
    fn recorder_shard_registration_runs_natively() {
        protocols::recorder_shard_registration();
    }

    #[test]
    fn server_shutdown_handshake_runs_natively() {
        protocols::server_shutdown_handshake();
    }

    #[test]
    fn sampler_shutdown_handshake_runs_natively() {
        protocols::sampler_shutdown_handshake();
    }
}

/// The model-checked harnesses (`--cfg sclog_model` builds only; see
/// `scripts/verify.sh --model-check`).
#[cfg(all(test, sclog_model))]
mod model_tests {
    use super::{fixtures, protocols};
    use sclog_sync::model::{FailureKind, Model, Report};
    use sclog_sync::{thread, RwLock};

    /// Print the exploration summary (the `--model-check` contract:
    /// schedule counts go to stdout) and assert the run passed.
    fn pass(r: Report) {
        println!("{}", r.summary());
        r.require_pass();
    }

    // ------------------------------------------------- pass harnesses

    /// The acceptance harness: 2 producers × 1 consumer × capacity 2,
    /// exhaustively explored under preemption bound 2.
    #[test]
    fn channel_2p1c_cap2() {
        let r = Model::new()
            .preemption_bound(2)
            .check("channel_2p1c_cap2", || protocols::channel_no_loss(2, 2, 2));
        pass(r);
    }

    /// Named regression for the PR 6 close-while-blocked wakeup fix:
    /// dropping the receiver must wake every sender parked on the
    /// full ring on every schedule.
    #[test]
    fn pr6_close_while_blocked() {
        let r = Model::new()
            .preemption_bound(2)
            .check("pr6_close_while_blocked", || {
                protocols::channel_close_while_blocked()
            });
        pass(r);
    }

    #[test]
    fn channel_ping_pong() {
        let r = Model::new()
            .preemption_bound(2)
            .check("channel_ping_pong", || protocols::channel_ping_pong(2));
        pass(r);
    }

    /// Satellite: the `InFlightGauge` permit invariants, promoted from
    /// `debug_assert!`s to checks on every explored schedule (both the
    /// `model_assert!` inside `PeakGauge` and a registered invariant
    /// evaluated at every scheduling point).
    #[test]
    fn gauge_permit_protocol() {
        let r = Model::new()
            .preemption_bound(2)
            .check("gauge_permit_protocol", || {
                protocols::gauge_permit_protocol(2, 3)
            });
        pass(r);
    }

    #[test]
    fn tagpool_close_drain() {
        let rules = fixtures::rules();
        let r = Model::new()
            .preemption_bound(2)
            .check("tagpool_close_drain", || {
                protocols::tagpool_close_drain(&rules, 1, 1, 2)
            });
        pass(r);
    }

    #[test]
    fn recorder_registry_seal() {
        let r = Model::new()
            .preemption_bound(2)
            .check("recorder_registry_seal", || {
                protocols::recorder_shard_registration()
            });
        pass(r);
    }

    #[test]
    fn server_shutdown_handshake() {
        let r = Model::new()
            .preemption_bound(2)
            .check("server_shutdown_handshake", || {
                protocols::server_shutdown_handshake()
            });
        pass(r);
    }

    /// PR 10: the timeline sampler's stop handshake, with spurious
    /// wakeups standing in for the production timer's ticks, must
    /// terminate on every schedule — the stop notify can never be
    /// lost while the sampler holds-or-awaits the flag's mutex.
    #[test]
    fn sampler_shutdown_handshake() {
        let r = Model::new()
            .preemption_bound(2)
            .spurious_budget(2)
            .check("sampler_shutdown_handshake", || {
                protocols::sampler_shutdown_handshake()
            });
        pass(r);
    }

    /// Facade `RwLock`: a writer updating a two-field value under the
    /// write lock is never observed half-done by concurrent readers.
    #[test]
    fn rwlock_no_torn_reads() {
        let r = Model::new()
            .preemption_bound(2)
            .check("rwlock_no_torn_reads", || {
                let pair = RwLock::new((0u64, 0u64));
                thread::scope(|s| {
                    let pair = &pair;
                    for _ in 0..2 {
                        thread::spawn_in(s, move || {
                            let g = pair.read().unwrap();
                            assert_eq!(g.0, g.1, "torn read");
                        });
                    }
                    let mut g = pair.write().unwrap();
                    g.0 += 1;
                    g.1 += 1;
                });
            });
        pass(r);
    }

    // ------------------------------------------- mutation detection

    fn detect(mutant: &str, expect: FailureKind, f: impl Fn() + Sync) {
        let r = Model::new()
            .preemption_bound(2)
            .with_mutation(mutant)
            .check(&format!("mutant:{mutant}"), f);
        println!("{}", r.summary());
        let fail = r.require_failure();
        assert_eq!(fail.kind, expect, "mutant {mutant}: {fail}");
    }

    /// The PR 6 bug itself: `Receiver::drop` forgets to wake blocked
    /// senders. The close-while-blocked harness must deadlock.
    #[test]
    fn mutant_recv_drop_no_notify_is_detected() {
        detect("recv_drop_no_notify", FailureKind::Deadlock, || {
            protocols::channel_close_while_blocked()
        });
    }

    /// The last sender leaving without waking the receiver strands a
    /// consumer parked on the empty ring.
    #[test]
    fn mutant_send_drop_no_notify_is_detected() {
        detect("send_drop_no_notify", FailureKind::Deadlock, || {
            protocols::channel_no_loss(2, 1, 2)
        });
    }

    /// A send that skips its data-ready notify loses the wakeup the
    /// ping-pong responder depends on.
    #[test]
    fn mutant_send_skip_notify_ready_is_detected() {
        detect("send_skip_notify_ready", FailureKind::Deadlock, || {
            protocols::channel_ping_pong(1)
        });
    }

    /// `if` instead of `while` around the receive wait: an injected
    /// spurious wakeup makes the receiver pop an empty ring.
    #[test]
    fn mutant_recv_if_wait_is_detected() {
        let r = Model::new()
            .preemption_bound(2)
            .spurious_budget(1)
            .with_mutation("recv_if_wait")
            .check("mutant:recv_if_wait", || {
                protocols::channel_no_loss(2, 1, 2)
            });
        println!("{}", r.summary());
        let fail = r.require_failure();
        assert_eq!(fail.kind, FailureKind::Panic, "{fail}");
        assert!(fail.message.contains("woke to an empty ring"), "{fail}");
    }

    /// `PoolClient::close` without the wakeups: idle workers sleep
    /// through the close and the scope join never completes.
    #[test]
    fn mutant_pool_close_no_notify_is_detected() {
        let rules = fixtures::rules();
        detect("pool_close_no_notify", FailureKind::Deadlock, move || {
            protocols::tagpool_close_drain(&rules, 1, 1, 1)
        });
    }

    /// A sampler stop that forgets its notify strands the parked
    /// sampler with the flag raised but nobody to read it.
    #[test]
    fn mutant_sampler_stop_skip_notify_is_detected() {
        detect("sampler_stop_skip_notify", FailureKind::Deadlock, || {
            protocols::sampler_shutdown_handshake()
        });
    }

    // ------------------------------------------------ PCT sampling

    /// PCT sampling over the acceptance protocol: randomized
    /// priority schedules, all green.
    #[test]
    fn pct_channel_no_loss_passes() {
        let r = Model::new().pct("pct_channel", 0x5c10_9001, 64, 3, || {
            protocols::channel_no_loss(2, 2, 2)
        });
        pass(r);
    }

    /// PCT finds a seeded lost-wakeup bug and reports a replay seed —
    /// deterministic for a fixed master seed.
    #[test]
    fn pct_detects_skip_notify_and_reports_seed() {
        let r = Model::new().with_mutation("send_skip_notify_ready").pct(
            "pct_skip_notify",
            0x5c10_9002,
            64,
            3,
            || protocols::channel_ping_pong(1),
        );
        println!("{}", r.summary());
        let fail = r.require_failure();
        assert_eq!(fail.kind, FailureKind::Deadlock, "{fail}");
        assert!(
            fail.message.contains("seed 0x"),
            "PCT failure must print a replay seed: {}",
            fail.message
        );
    }
}
