//! Reusable protocol drivers for the model-check harnesses.
//!
//! Each driver runs one concurrent scenario over the *real* workspace
//! protocols (the bounded channel, the tag pool, the recorder, the
//! in-flight gauge) through the `sclog-sync` facade, and asserts its
//! correctness properties inline — so under `Model::check` every
//! assertion holds on every explored schedule, while a plain native
//! call (normal builds) still exercises the driver once.
//!
//! Everything synchronized is constructed *inside* the driver: model
//! primitives are registered per execution and must not leak across
//! schedules.

use sclog_core::pipeline::channel::{bounded, TrySendError};
use sclog_core::pipeline::InFlightGauge;
use sclog_obs::Recorder;
use sclog_rules::{LineBatch, RuleSet, TagPool};
use sclog_sync::atomic::{AtomicBool, Ordering};
use sclog_sync::thread;
use sclog_sync::{Condvar, Mutex, PoisonError};

/// Tag a producer's `i`-th value so loss, duplication and per-producer
/// order are all checkable from the received multiset.
fn stamp(producer: usize, i: usize) -> u64 {
    ((producer as u64) << 32) | i as u64
}

/// `producers` threads each send `per_producer` stamped values through
/// a `capacity`-bounded channel; the calling thread consumes. Asserts
/// no message is lost or duplicated and each producer's values arrive
/// in order (FIFO per sender — the channel's delivery guarantee).
pub fn channel_no_loss(producers: usize, per_producer: usize, capacity: usize) {
    let (tx, rx) = bounded::<u64>(capacity);
    let mut got = Vec::new();
    thread::scope(|s| {
        for p in 0..producers {
            let tx = tx.clone();
            thread::spawn_in(s, move || {
                for i in 0..per_producer {
                    tx.send(stamp(p, i)).expect("receiver outlives producers");
                }
            });
        }
        drop(tx);
        while let Some(v) = rx.recv() {
            got.push(v);
        }
    });
    assert_eq!(got.len(), producers * per_producer, "message loss");
    let mut next = vec![0usize; producers];
    for v in got {
        let (p, i) = ((v >> 32) as usize, (v & 0xffff_ffff) as usize);
        assert_eq!(i, next[p], "producer {p} out of order or duplicated");
        next[p] = i + 1;
    }
}

/// The PR 6 bug shape: the receiver leaves while senders may still be
/// blocked on a full ring. Every such sender must wake and observe the
/// disconnect (send returns `Err`) instead of sleeping forever.
pub fn channel_close_while_blocked() {
    let (tx, rx) = bounded::<u64>(1);
    thread::scope(|s| {
        for p in 0..2u64 {
            let tx = tx.clone();
            thread::spawn_in(s, move || {
                // Sends race the receiver's departure; failing with
                // the value returned is fine, hanging is the bug.
                let _ = tx.send(p);
                let _ = tx.send(p + 10);
            });
        }
        drop(tx);
        assert!(rx.recv().is_some(), "at least one send lands");
        drop(rx);
    });
}

/// Request/reply over two capacity-1 channels. The responder only ever
/// learns about a request from the sender's wakeup, so a send that
/// skips its `notify` deadlocks the pair — the scenario that pins the
/// `send_skip_notify_ready` mutant.
pub fn channel_ping_pong(rounds: usize) {
    let (req_tx, req_rx) = bounded::<u64>(1);
    let (rep_tx, rep_rx) = bounded::<u64>(1);
    thread::scope(|s| {
        thread::spawn_in(s, move || {
            while let Some(v) = req_rx.recv() {
                rep_tx.send(v + 1).expect("requester awaits the reply");
            }
        });
        for i in 0..rounds as u64 {
            req_tx.send(i).expect("responder alive");
            assert_eq!(rep_rx.recv(), Some(i + 1), "reply matches request");
        }
        drop(req_tx);
    });
}

/// The streaming pipeline's permit protocol in miniature: a producer
/// takes a permit then raises the in-flight gauge, the consumer lowers
/// the gauge then returns the permit. The gauge's hard bound (a
/// `model_assert!` inside `PeakGauge::add`) must hold on every
/// schedule, and a registered invariant re-checks it at every
/// scheduling point in between.
pub fn gauge_permit_protocol(bound: usize, batches: usize) {
    let gauge = InFlightGauge::new(bound);
    #[cfg(sclog_model)]
    {
        let g = gauge.clone();
        sclog_sync::model::register_invariant("in_flight_within_bound", move || {
            let current = g.current_batches();
            assert!(
                current <= bound,
                "{current} batches in flight, bound {bound}"
            );
        });
    }
    let (permit_tx, permit_rx) = bounded::<()>(bound);
    let (tx, rx) = bounded::<usize>(bound);
    thread::scope(|s| {
        let gauge = &gauge;
        thread::spawn_in(s, move || {
            while let Some(len) = rx.recv() {
                gauge.release(len);
                let _ = permit_rx.recv();
            }
        });
        for _ in 0..batches {
            permit_tx.send(()).expect("consumer outlives producer");
            gauge.acquire(1);
            tx.send(1).expect("consumer outlives producer");
        }
        drop(tx);
        drop(permit_tx);
    });
    assert_eq!(gauge.current_batches(), 0, "permit accounting leaked");
    assert!(gauge.peak_batches() <= bound, "gauge peak exceeded bound");
}

/// Submit `batches` empty line batches to a [`TagPool`] and drain the
/// results. Covers the pool's job/result queues and the close/drain
/// handshake: every submitted batch must come back exactly once, and
/// the scope's worker join must terminate.
pub fn tagpool_close_drain(rules: &RuleSet, workers: usize, job_cap: usize, batches: usize) {
    let delivered = TagPool::scope(rules, workers, job_cap, |pool| {
        for _ in 0..batches {
            pool.submit_lines(LineBatch::default());
        }
        pool.close();
        let mut seqs: Vec<u64> = std::iter::from_fn(|| pool.recv()).map(|b| b.seq).collect();
        seqs.sort_unstable();
        seqs
    });
    let want: Vec<u64> = (0..batches as u64).collect();
    assert_eq!(delivered, want, "batch lost, duplicated, or invented");
}

/// Two threads race to create their recorder shards (which seals the
/// registry) and write to a pre-registered counter. The merged
/// snapshot must see both shards and the exact total — no torn
/// registration, no lost shard.
pub fn recorder_shard_registration() {
    let rec = Recorder::new();
    let c = rec.counter("check.writes");
    thread::scope(|s| {
        for i in 0..2 {
            let rec = &rec;
            thread::spawn_in(s, move || {
                let tr = rec.thread(&format!("shard/{i}"));
                tr.add(c, 1 + i);
            });
        }
    });
    let snap = rec.snapshot();
    assert_eq!(snap.counter("check.writes"), Some(3), "shard writes lost");
    assert_eq!(snap.as_report().workers.len(), 0, "no stage spans expected");
}

/// The sclogd accept/shutdown handshake, shaped without sockets: an
/// accept thread `try_send`s "connections" into the bounded ring until
/// the shutdown latch flips (refusing with a 503 when the ring is
/// full), a worker drains until the sender disconnects. Every accepted
/// connection must be served or refused — never stranded — and both
/// threads must terminate.
pub fn server_shutdown_handshake() {
    let shutdown = AtomicBool::new(false);
    let (conn_tx, conn_rx) = bounded::<u64>(1);
    let mut served = 0u64;
    let mut accepted = 0u64;
    let mut refused = 0u64;
    thread::scope(|s| {
        let shutdown = &shutdown;
        let worker = thread::spawn_in(s, move || {
            let mut n = 0u64;
            while conn_rx.recv().is_some() {
                n += 1;
            }
            n
        });
        let accept = thread::spawn_in(s, move || {
            let mut accepted = 0u64;
            let mut refused = 0u64;
            for conn in 0..3u64 {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
                match conn_tx.try_send(conn) {
                    Ok(()) => accepted += 1,
                    Err(TrySendError::Full(_)) => refused += 1,
                    Err(TrySendError::Disconnected(_)) => break,
                }
            }
            (accepted, refused)
        });
        shutdown.store(true, Ordering::SeqCst);
        (accepted, refused) = accept.join().expect("accept thread");
        served = worker.join().expect("worker thread");
    });
    assert_eq!(served, accepted, "accepted connection stranded in the ring");
    assert!(accepted + refused <= 3, "phantom connections");
}

/// The sclogd timeline sampler's shutdown handshake
/// (`crates/sclogd/src/sampler.rs`), shaped without a clock: the
/// sampler parks on a condvar under the stop mutex and counts a
/// "sample" whenever it wakes with the flag still down; the stopping
/// side raises the flag under the same mutex, notifies, and joins.
/// The production wait carries a timeout; here it is a plain `wait`,
/// with the model's injected spurious wakeups standing in for timer
/// ticks — so the proof that the stop notify is never lost does not
/// lean on the clock bailing the thread out, which is strictly
/// stronger than what production needs. A stop that skips its notify
/// (the `sampler_stop_skip_notify` mutant) must strand the parked
/// sampler forever.
pub fn sampler_shutdown_handshake() {
    let stop = Mutex::new(false);
    let wake = Condvar::new();
    thread::scope(|s| {
        let (stop, wake) = (&stop, &wake);
        let sampler = thread::spawn_in(s, move || {
            let mut ticks = 0u64;
            let mut flag = stop.lock().unwrap_or_else(PoisonError::into_inner);
            while !*flag {
                flag = wake.wait(flag).unwrap_or_else(PoisonError::into_inner);
                if !*flag {
                    // In production this arm is a timer tick: take a
                    // sample, go back to sleep.
                    ticks += 1;
                }
            }
            ticks
        });
        *stop.lock().unwrap_or_else(PoisonError::into_inner) = true;
        #[cfg(sclog_model)]
        if sclog_sync::model::mutation("sampler_stop_skip_notify") {
            // Seeded bug: raise the flag but never wake the sampler.
            // With no timeout to bail it out, it stays parked and the
            // scope join deadlocks.
            return;
        }
        wake.notify_one();
        let _ticks = sampler.join().expect("sampler thread");
        assert!(
            *stop.lock().unwrap_or_else(PoisonError::into_inner),
            "stop flag must still be raised after the join"
        );
    });
}
